#include <gtest/gtest.h>

#include "core/smart_refresh.hh"
#include "ctrl/memory_controller.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

struct SmartRig
{
    explicit SmartRig(const DramConfig &cfg = tcfg::tinyConfig(),
                      SmartRefreshConfig sc = {})
        : config(cfg), root("root"), dram(cfg, eq, &root),
          ctrl(dram, eq, ControllerConfig{}, &root),
          policy(cfg, sc, eq, &root)
    {
        ctrl.setRefreshPolicy(&policy);
    }

    Addr
    addrOf(std::uint64_t blockRow) const
    {
        return blockRow * config.org.rowBytes();
    }

    DramConfig config;
    EventQueue eq;
    StatGroup root;
    DramModule dram;
    MemoryController ctrl;
    SmartRefreshPolicy policy;
};

SmartRefreshConfig
noAuto()
{
    SmartRefreshConfig sc;
    sc.autoReconfigure = false;
    return sc;
}

} // namespace

TEST(SmartRefresh, StartsInSmartMode)
{
    SmartRig rig(tcfg::tinyConfig(), noAuto());
    EXPECT_EQ(rig.policy.mode(), SmartRefreshPolicy::Mode::Smart);
    EXPECT_TRUE(rig.policy.countersActive());
    EXPECT_FALSE(rig.policy.cbrActive());
}

TEST(SmartRefresh, CanStartInCbrMode)
{
    SmartRefreshConfig sc = noAuto();
    sc.startInCbrMode = true;
    SmartRig rig(tcfg::tinyConfig(), sc);
    EXPECT_EQ(rig.policy.mode(), SmartRefreshPolicy::Mode::Cbr);
    EXPECT_FALSE(rig.policy.countersActive());
    EXPECT_TRUE(rig.policy.cbrActive());
}

TEST(SmartRefresh, IdleRateEqualsBaseline)
{
    // With no demand traffic the scheme degenerates to distributed
    // refresh: totalRows refreshes per interval in steady state.
    SmartRig rig(tcfg::tinyConfig(), noAuto());
    const Tick retention = rig.config.timing.retention;
    rig.eq.runUntil(retention);
    const std::uint64_t afterWarm = rig.dram.totalRefreshes();
    rig.eq.runUntil(2 * retention);
    const std::uint64_t inSteady = rig.dram.totalRefreshes() - afterWarm;
    EXPECT_EQ(inSteady, rig.config.org.totalRows());
    EXPECT_EQ(rig.dram.retention().violations(), 0u);
}

TEST(SmartRefresh, AccessedRowsSkipRefreshes)
{
    SmartRig rig(tcfg::tinyConfig(), noAuto());
    const Tick retention = rig.config.timing.retention;
    // Touch row-block 0 (rank 0, bank 0, row 0) every eighth of an
    // interval, forever.
    std::function<void()> touch = [&] {
        rig.ctrl.access(rig.addrOf(0), false);
        rig.eq.scheduleAfter(retention / 8, touch);
    };
    rig.eq.schedule(0, touch);

    rig.eq.runUntil(6 * retention);
    // In steady state every row refreshes once per interval except the
    // touched one, which never expires.
    const std::uint64_t total = rig.dram.totalRefreshes();
    const std::uint64_t expectedAllRows =
        6 * rig.config.org.totalRows();
    EXPECT_LT(total, expectedAllRows - 3);
    EXPECT_EQ(rig.dram.retention().violations(), 0u);
}

TEST(SmartRefresh, CountersResetOnActivateAndClose)
{
    SmartRig rig(tcfg::tinyConfig(), noAuto());
    const std::uint64_t writesBefore = rig.policy.counters().sramWrites();
    rig.ctrl.access(rig.addrOf(5), false);
    rig.eq.runUntil(10 * kMicrosecond); // demand + idle precharge close
    // At least two counter resets: one at activate, one at page close.
    EXPECT_GE(rig.policy.counters().sramWrites(), writesBefore + 2);
}

TEST(SmartRefresh, PendingQueueStaysBounded)
{
    SmartRig rig(tcfg::tinyConfig(), noAuto());
    rig.eq.runUntil(3 * rig.config.timing.retention);
    EXPECT_LE(rig.policy.pendingQueue().maxDepth(),
              rig.policy.pendingQueue().capacity());
    EXPECT_EQ(rig.policy.pendingQueue().overflows(), 0u);
}

TEST(SmartRefresh, OverheadEnergyGrows)
{
    SmartRig rig(tcfg::tinyConfig(), noAuto());
    rig.eq.runUntil(rig.config.timing.retention);
    EXPECT_GT(rig.policy.overheadEnergy(), 0.0);
    EXPECT_GT(rig.policy.bus().totalEnergy(), 0.0);
    // Bus accesses == RAS-only refreshes issued.
    EXPECT_EQ(rig.policy.bus().accesses(), rig.dram.rasOnlyRefreshes());
}

TEST(SmartRefresh, SyncEnergyStatsIsIdempotent)
{
    SmartRig rig(tcfg::tinyConfig(), noAuto());
    rig.eq.runUntil(rig.config.timing.retention / 2);
    rig.policy.syncEnergyStats();
    const double once = rig.policy.sram().totalEnergy();
    rig.policy.syncEnergyStats();
    EXPECT_DOUBLE_EQ(rig.policy.sram().totalEnergy(), once);
    EXPECT_NEAR(once,
                rig.policy.sram().energyFor(
                    rig.policy.counters().sramReads(),
                    rig.policy.counters().sramWrites()),
                once * 1e-9);
}

TEST(SmartRefresh, CounterAreaMatchesFormula)
{
    SmartRig rig(tcfg::tinyConfig(), noAuto());
    const auto &org = rig.config.org;
    EXPECT_DOUBLE_EQ(rig.policy.counterAreaKBUsed(),
                     counterAreaKB(org.banks, org.ranks, org.rows, 3));
}

TEST(SmartRefresh, RequestedCountsTrackIssued)
{
    SmartRig rig(tcfg::tinyConfig(), noAuto());
    rig.eq.runUntil(2 * rig.config.timing.retention);
    EXPECT_EQ(rig.policy.smartRefreshesRequested(),
              rig.dram.rasOnlyRefreshes());
    EXPECT_EQ(rig.policy.cbrRefreshesRequested(), 0u);
}

TEST(SmartRefresh, ControllerMaxCapacityCounterBanks)
{
    // Section 5: a controller built for 16x the installed capacity has
    // 16 counter banks with only one enabled, and its (larger) SRAM
    // array costs more per access.
    DramConfig cfg = tcfg::tinyConfig();
    SmartRefreshConfig exact = noAuto();
    SmartRefreshConfig big = noAuto();
    big.controllerMaxRows = cfg.org.totalRows() * 16;

    SmartRig rigExact(cfg, exact);
    SmartRig rigBig(cfg, big);

    EXPECT_EQ(rigExact.policy.counterBanksTotal(), 1u);
    EXPECT_EQ(rigBig.policy.counterBanksTotal(), 16u);
    EXPECT_EQ(rigBig.policy.counterBanksEnabled(), 1u);
    EXPECT_GT(rigBig.policy.sram().readEnergy(),
              rigExact.policy.sram().readEnergy());
    EXPECT_GT(rigBig.policy.sram().arrayKB(),
              rigExact.policy.sram().arrayKB());
}

TEST(SmartRefresh, PerBankRefreshSpreadIsUniformWhenIdle)
{
    // With no demand traffic every (rank, bank) receives exactly
    // rows-per-bank refreshes per interval.
    SmartRig rig(tcfg::tinyConfig(), noAuto());
    const Tick retention = rig.config.timing.retention;
    rig.eq.runUntil(retention); // warm
    const std::uint64_t b0 = rig.dram.refreshesToBank(0, 0);
    const std::uint64_t b1 = rig.dram.refreshesToBank(0, 1);
    rig.eq.runUntil(2 * retention);
    EXPECT_EQ(rig.dram.refreshesToBank(0, 0) - b0, rig.config.org.rows);
    EXPECT_EQ(rig.dram.refreshesToBank(0, 1) - b1, rig.config.org.rows);
}

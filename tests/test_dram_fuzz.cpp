/**
 * @file
 * Randomized command-scheduler fuzz: drive the DramModule with randomly
 * chosen commands, always issued at their earliestIssue() tick. The
 * device model is its own oracle — any timing or state inconsistency
 * panics — and the retention tracker cross-checks charge safety when
 * the random scheduler happens to refresh on time.
 */

#include <gtest/gtest.h>

#include "dram/dram_module.hh"
#include "sim/random.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

/** One fuzz episode with a given seed. */
void
fuzzEpisode(std::uint64_t seed, std::uint64_t steps)
{
    const DramConfig cfg = tcfg::smallConfig();
    EventQueue eq;
    DramModule dram(cfg, eq);
    Rng rng(seed);

    std::uint64_t issued = 0;
    for (std::uint64_t i = 0; i < steps; ++i) {
        DramCommand cmd;
        cmd.rank = static_cast<std::uint32_t>(
            rng.nextBelow(cfg.org.ranks));
        cmd.bank = static_cast<std::uint32_t>(
            rng.nextBelow(cfg.org.banks));
        cmd.row =
            static_cast<std::uint32_t>(rng.nextBelow(cfg.org.rows));
        cmd.column =
            static_cast<std::uint32_t>(rng.nextBelow(cfg.org.columns));

        // Pick a command that is *state-legal* for the chosen bank;
        // timing legality is delegated to earliestIssue().
        const bool open = dram.isBankOpen(cmd.rank, cmd.bank);
        switch (rng.nextBelow(4)) {
          case 0:
            cmd.type = open ? DramCommandType::Precharge
                            : DramCommandType::Activate;
            break;
          case 1:
            if (!open)
                continue;
            cmd.type = rng.nextBool(0.5) ? DramCommandType::Read
                                         : DramCommandType::Write;
            cmd.row = dram.openRow(cmd.rank, cmd.bank);
            break;
          case 2:
            cmd.type = DramCommandType::RefreshRasOnly;
            break;
          default:
            cmd.type = DramCommandType::RefreshCbr;
            break;
        }

        const Tick earliest = dram.earliestIssue(cmd);
        // Occasionally add slack so commands do not always issue at the
        // boundary tick.
        const Tick at = earliest + (rng.nextBool(0.3)
                                        ? rng.nextBelow(200 * kNanosecond)
                                        : 0);
        eq.runUntil(std::max(eq.now(), at));
        ASSERT_NO_THROW(dram.issue(cmd)) << "step " << i;
        ++issued;
    }
    dram.finalize();

    // Sanity: the episode really exercised the device.
    EXPECT_EQ(issued, dram.activates() + dram.precharges() +
                          dram.reads() + dram.writes() +
                          dram.cbrRefreshes() + dram.rasOnlyRefreshes());
    EXPECT_GT(dram.power().totalEnergy(), 0.0);
    // A random scheduler gives no deadline guarantee, but the tracker
    // must never *undercount* ages: max observed age is bounded by the
    // episode length (ages are recorded at operation completion ticks,
    // which trail the final issue by at most one refresh duration).
    EXPECT_LE(dram.retention().maxObservedAge(),
              eq.now() + cfg.timing.tRP + cfg.timing.tRFCrow);
}

} // namespace

class DramFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DramFuzz, RandomLegalSchedulesNeverPanic)
{
    fuzzEpisode(GetParam(), 4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

TEST(DramFuzz, IllegalCommandsAlwaysPanic)
{
    // The inverse property: state-illegal commands must be rejected no
    // matter when they are issued.
    const DramConfig cfg = tcfg::tinyConfig();
    EventQueue eq;
    DramModule dram(cfg, eq);
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        const auto bank =
            static_cast<std::uint32_t>(rng.nextBelow(cfg.org.banks));
        eq.runUntil(eq.now() + rng.nextBelow(kMicrosecond));
        if (dram.isBankOpen(0, bank)) {
            EXPECT_THROW(
                dram.issue({DramCommandType::Activate, 0, bank, 0, 0}),
                std::logic_error);
            // Legal follow-up to keep the episode moving.
            DramCommand pre{DramCommandType::Precharge, 0, bank, 0, 0};
            eq.runUntil(std::max(eq.now(), dram.earliestIssue(pre)));
            dram.issue(pre);
        } else {
            EXPECT_THROW(
                dram.issue({DramCommandType::Precharge, 0, bank, 0, 0}),
                std::logic_error);
            DramCommand act{DramCommandType::Activate, 0, bank,
                            static_cast<std::uint32_t>(
                                rng.nextBelow(cfg.org.rows)),
                            0};
            eq.runUntil(std::max(eq.now(), dram.earliestIssue(act)));
            dram.issue(act);
        }
    }
}

/**
 * @file
 * The paper's Section 4.3 correctness claim, checked as a property:
 * under *arbitrary* access patterns, every row's charge age stays within
 * the retention deadline. The RetentionTracker shadow model observes
 * every activate/restore/refresh; any late refresh is a violation.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/smart_refresh.hh"
#include "ctrl/memory_controller.hh"
#include "sim/random.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

struct Rig
{
    Rig(const DramConfig &cfg, std::uint32_t bits)
        : config(cfg), root("root"), dram(cfg, eq, &root),
          ctrl(dram, eq, ControllerConfig{}, &root),
          policy(cfg, makeConfig(bits), eq, &root)
    {
        ctrl.setRefreshPolicy(&policy);
    }

    static SmartRefreshConfig
    makeConfig(std::uint32_t bits)
    {
        SmartRefreshConfig sc;
        sc.counterBits = bits;
        sc.autoReconfigure = false;
        return sc;
    }

    Addr
    addrOf(std::uint64_t blockRow, std::uint64_t offset = 0) const
    {
        return blockRow * config.org.rowBytes() + offset;
    }

    void
    expectSafe()
    {
        EXPECT_EQ(dram.retention().violations(), 0u);
        EXPECT_EQ(dram.retention().finalCheck(eq.now()), 0u);
        EXPECT_EQ(ctrl.refreshBacklog(), 0u);
    }

    DramConfig config;
    EventQueue eq;
    StatGroup root;
    DramModule dram;
    MemoryController ctrl;
    SmartRefreshPolicy policy;
};

} // namespace

/** Sweep counter widths x retention intervals with random traffic. */
class CorrectnessSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, Tick>>
{
};

TEST_P(CorrectnessSweep, RandomTrafficNeverViolatesRetention)
{
    const auto [bits, retention] = GetParam();
    DramConfig cfg = tcfg::tinyConfig();
    cfg.timing.retention = retention;
    Rig rig(cfg, bits);

    Rng rng(bits * 1000 + retention);
    const std::uint64_t totalRows = cfg.org.totalRows();

    // Poisson-ish random traffic at a rate that touches roughly half
    // the rows per interval.
    const double rate = 0.5 * static_cast<double>(totalRows) /
                        (static_cast<double>(retention) /
                         static_cast<double>(kSecond));
    const Tick meanGap =
        static_cast<Tick>(static_cast<double>(kSecond) / rate);
    std::function<void()> access = [&] {
        rig.ctrl.access(rig.addrOf(rng.nextBelow(totalRows)),
                        rng.nextBool(0.3));
        rig.eq.scheduleAfter(
            1 + static_cast<Tick>(rng.nextExponential(
                    static_cast<double>(meanGap))),
            access);
    };
    rig.eq.schedule(0, access);

    rig.eq.runUntil(6 * retention);
    rig.expectSafe();
    // Traffic must actually have skipped some refreshes.
    EXPECT_LT(rig.dram.totalRefreshes(), 6 * totalRows);
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndRetention, CorrectnessSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 4u),
                       ::testing::Values(Tick(2) * kMillisecond,
                                         Tick(4) * kMillisecond)));

TEST(SmartCorrectness, AdversarialTouchJustBeforeExpiry)
{
    // Paper Figure 4, Case 1: a row touched D before its counter is
    // decremented must still be refreshed within 64 ms of the touch.
    DramConfig cfg = tcfg::tinyConfig();
    Rig rig(cfg, 3);
    const Tick period = rig.policy.stagger().counterAccessPeriod();

    // Re-touch one row at (counter period - epsilon) cadence: the
    // counter keeps being reset just before decrement.
    std::function<void()> touch = [&] {
        rig.ctrl.access(rig.addrOf(0), false);
        rig.eq.scheduleAfter(period - 10 * kMicrosecond, touch);
    };
    rig.eq.schedule(0, touch);
    rig.eq.runUntil(8 * cfg.timing.retention);
    rig.expectSafe();
}

TEST(SmartCorrectness, AdversarialTouchJustAfterDecrement)
{
    // Paper Figure 4, Case 2: a row touched D *after* its counter is
    // decremented is refreshed at (retention - D) after the touch.
    DramConfig cfg = tcfg::tinyConfig();
    Rig rig(cfg, 3);
    const Tick period = rig.policy.stagger().counterAccessPeriod();

    // Re-touch at (period + epsilon) cadence: each touch lands just
    // after a decrement, drifting the phase across the whole period.
    std::function<void()> touch = [&] {
        rig.ctrl.access(rig.addrOf(3), false);
        rig.eq.scheduleAfter(period + 10 * kMicrosecond, touch);
    };
    rig.eq.schedule(0, touch);
    rig.eq.runUntil(8 * cfg.timing.retention);
    rig.expectSafe();
}

TEST(SmartCorrectness, BurstsOfHotTraffic)
{
    // Alternating phases: hammer a quarter of the rows, then go idle.
    DramConfig cfg = tcfg::tinyConfig();
    Rig rig(cfg, 3);
    Rng rng(99);
    const std::uint64_t totalRows = cfg.org.totalRows();
    const Tick retention = cfg.timing.retention;

    std::function<void(int)> phase = [&](int n) {
        const bool hot = (n % 2 == 0);
        if (hot) {
            for (int i = 0; i < 200; ++i) {
                rig.eq.scheduleAfter(
                    rng.nextBelow(retention / 2),
                    [&rig, &rng, totalRows] {
                        rig.ctrl.access(
                            rig.addrOf(rng.nextBelow(totalRows / 4)),
                            false);
                    });
            }
        }
        rig.eq.scheduleAfter(retention / 2, [&phase, n] { phase(n + 1); });
    };
    rig.eq.schedule(0, [&phase] { phase(0); });

    rig.eq.runUntil(8 * retention);
    rig.expectSafe();
}

TEST(SmartCorrectness, EveryRowHammeredSimultaneously)
{
    // All counters get reset together repeatedly: the stagger must not
    // collapse into a deadline-missing burst (Section 4.2's point).
    DramConfig cfg = tcfg::tinyConfig();
    Rig rig(cfg, 2);
    const Tick retention = cfg.timing.retention;
    const std::uint64_t totalRows = cfg.org.totalRows();

    std::function<void()> sweep = [&] {
        for (std::uint64_t r = 0; r < totalRows; ++r) {
            rig.eq.scheduleAfter(1 + r * 2 * kMicrosecond, [&rig, r] {
                rig.ctrl.access(rig.addrOf(r), false);
            });
        }
        rig.eq.scheduleAfter(retention * 3 / 4, sweep);
    };
    rig.eq.schedule(0, sweep);

    rig.eq.runUntil(8 * retention);
    rig.expectSafe();
    EXPECT_LE(rig.policy.pendingQueue().maxDepth(),
              rig.policy.pendingQueue().capacity());
}

TEST(SmartCorrectness, SingleRowMonopoly)
{
    // One row gets all the traffic; every other row must still be
    // refreshed on schedule.
    DramConfig cfg = tcfg::tinyConfig();
    Rig rig(cfg, 3);
    std::function<void()> hammer = [&] {
        rig.ctrl.access(rig.addrOf(7), false);
        rig.eq.scheduleAfter(50 * kMicrosecond, hammer);
    };
    rig.eq.schedule(0, hammer);
    rig.eq.runUntil(6 * cfg.timing.retention);
    rig.expectSafe();
}

TEST(SmartCorrectness, WritesRestoreLikeReads)
{
    DramConfig cfg = tcfg::tinyConfig();
    Rig rig(cfg, 3);
    Rng rng(7);
    const std::uint64_t totalRows = cfg.org.totalRows();
    std::function<void()> access = [&] {
        rig.ctrl.access(rig.addrOf(rng.nextBelow(totalRows)), true);
        rig.eq.scheduleAfter(20 * kMicrosecond, access);
    };
    rig.eq.schedule(0, access);
    rig.eq.runUntil(5 * cfg.timing.retention);
    rig.expectSafe();
}

TEST(SmartCorrectness, TwoRankModule)
{
    DramConfig cfg = tcfg::smallConfig(); // 2 ranks x 4 banks x 128 rows
    Rig rig(cfg, 3);
    Rng rng(21);
    const std::uint64_t totalRows = cfg.org.totalRows();
    std::function<void()> access = [&] {
        rig.ctrl.access(rig.addrOf(rng.nextBelow(totalRows)),
                        rng.nextBool(0.5));
        rig.eq.scheduleAfter(
            1 + static_cast<Tick>(rng.nextExponential(30000.0)), access);
    };
    rig.eq.schedule(0, access);
    rig.eq.runUntil(4 * cfg.timing.retention);
    rig.expectSafe();
}

/** Sweep segment counts: the queue bound and safety hold for any N. */
class SegmentSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SegmentSweep, SafetyAndQueueBoundHold)
{
    const std::uint32_t segments = GetParam();
    DramConfig cfg = tcfg::tinyConfig();
    EventQueue eq;
    StatGroup root("root");
    DramModule dram(cfg, eq, &root);
    MemoryController ctrl(dram, eq, ControllerConfig{}, &root);
    SmartRefreshConfig sc;
    sc.counterBits = 3;
    sc.segments = segments;
    sc.queueCapacity = segments;
    sc.autoReconfigure = false;
    SmartRefreshPolicy policy(cfg, sc, eq, &root);
    ctrl.setRefreshPolicy(&policy);

    Rng rng(segments);
    const std::uint64_t totalRows = cfg.org.totalRows();
    std::function<void()> access = [&] {
        ctrl.access(rng.nextBelow(totalRows) * cfg.org.rowBytes(),
                    rng.nextBool(0.3));
        eq.scheduleAfter(1 + static_cast<Tick>(rng.nextExponential(4e4)),
                         access);
    };
    eq.schedule(0, access);
    eq.runUntil(5 * cfg.timing.retention);

    EXPECT_EQ(dram.retention().violations(), 0u);
    EXPECT_EQ(dram.retention().finalCheck(eq.now()), 0u);
    EXPECT_LE(policy.pendingQueue().maxDepth(),
              policy.pendingQueue().capacity());
    EXPECT_EQ(policy.pendingQueue().overflows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Segments, SegmentSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

TEST(SmartCorrectness, ShortRetentionEdramScale)
{
    // eDRAM-scale retention (the introduction's 4 ms figure) on the
    // tiny module: the deadline machinery must hold at 16x the refresh
    // pressure too.
    DramConfig cfg = tcfg::tinyConfig();
    cfg.timing.retention = 1 * kMillisecond;
    Rig rig(cfg, 3);
    Rng rng(3);
    const std::uint64_t totalRows = cfg.org.totalRows();
    std::function<void()> access = [&] {
        rig.ctrl.access(rig.addrOf(rng.nextBelow(totalRows)), false);
        rig.eq.scheduleAfter(1 + rng.nextBelow(20 * kMicrosecond),
                             access);
    };
    rig.eq.schedule(0, access);
    rig.eq.runUntil(10 * cfg.timing.retention);
    rig.expectSafe();
}

TEST(SmartCorrectness, RandomTrafficWithRetentionClasses)
{
    // Multi-rate counters under random traffic: per-class deadlines,
    // checked per-row by the shadow model.
    DramConfig cfg = tcfg::tinyConfig();
    EventQueue eq;
    StatGroup root("root");
    DramModule dram(cfg, eq, &root);
    MemoryController ctrl(dram, eq, ControllerConfig{}, &root);

    RetentionClassParams cp;
    cp.seed = 99;
    auto classes =
        std::make_shared<RetentionClassMap>(cfg.org.totalRows(), cp);
    std::vector<std::uint8_t> mults(classes->totalRows());
    for (std::uint64_t i = 0; i < mults.size(); ++i)
        mults[i] = static_cast<std::uint8_t>(classes->multiplier(i));
    dram.retention().applyClassMultipliers(mults);

    SmartRefreshConfig sc;
    sc.autoReconfigure = false;
    sc.retentionClasses = classes;
    SmartRefreshPolicy policy(cfg, sc, eq, &root);
    ctrl.setRefreshPolicy(&policy);

    Rng rng(17);
    const std::uint64_t totalRows = cfg.org.totalRows();
    std::function<void()> access = [&] {
        ctrl.access(rng.nextBelow(totalRows) * cfg.org.rowBytes(),
                    rng.nextBool(0.4));
        eq.scheduleAfter(1 + static_cast<Tick>(rng.nextExponential(5e4)),
                         access);
    };
    eq.schedule(0, access);
    eq.runUntil(12 * cfg.timing.retention);

    EXPECT_EQ(dram.retention().violations(), 0u);
    EXPECT_EQ(dram.retention().finalCheck(eq.now()), 0u);
}

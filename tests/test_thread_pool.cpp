/**
 * @file
 * Work-stealing thread-pool unit tests: submission/wait semantics,
 * future results, exception propagation, nested submission (tasks
 * executing inline on worker threads), parallelFor ordering guarantees
 * and a small stress run. The TSan CI job runs this suite to keep the
 * pool's locking honest.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "sim/thread_pool.hh"

using namespace smartref;

TEST(ThreadPool, RunsAllSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns)
{
    ThreadPool pool(2);
    pool.waitIdle(); // must not hang
    EXPECT_EQ(pool.threadCount(), 2u);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, FutureReturnsValue)
{
    ThreadPool pool(2);
    auto f = pool.submitFuture([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, FuturePropagatesException)
{
    ThreadPool pool(2);
    auto f = pool.submitFuture(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyFuturesAllComplete)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submitFuture([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock)
{
    // A task submitting (and waiting on) more work from inside a worker
    // must not deadlock: inner parallelFor calls run inline on workers.
    ThreadPool pool(2);
    std::atomic<int> count{0};
    auto outer = pool.submitFuture([&pool, &count] {
        parallelFor(pool, 8, [&count](std::size_t) { ++count; });
        return count.load();
    });
    EXPECT_GE(outer.get(), 8);
    pool.waitIdle();
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, OnWorkerThreadDetection)
{
    ThreadPool pool(2);
    EXPECT_FALSE(pool.onWorkerThread());
    auto f = pool.submitFuture(
        [&pool] { return pool.onWorkerThread(); });
    EXPECT_TRUE(f.get());
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        // No waitIdle: the destructor must finish all queued tasks.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(257);
    parallelFor(pool, visits.size(),
                [&visits](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialWhenJobsIsOne)
{
    // jobs <= 1 must not spawn threads: indices arrive in order on the
    // calling thread.
    std::vector<std::size_t> order;
    const std::thread::id caller = std::this_thread::get_id();
    parallelFor(1u, 16, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, RethrowsLowestIndexException)
{
    // Multiple bodies throw; the first exception in *index* order wins,
    // deterministically, independent of completion order.
    ThreadPool pool(4);
    try {
        parallelFor(pool, 64, [](std::size_t i) {
            if (i == 7 || i == 40)
                throw std::runtime_error("fail@" + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "fail@7");
    }
}

TEST(ParallelFor, CompletesRemainingWorkDespiteException)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(parallelFor(pool, 32,
                             [&ran](std::size_t i) {
                                 ++ran;
                                 if (i == 0)
                                     throw std::runtime_error("x");
                             }),
                 std::runtime_error);
    // Every index still executed; a mid-sweep failure must not leave
    // silent holes in the result vector.
    EXPECT_EQ(ran.load(), 32);
}

TEST(ParallelFor, StressManySmallTasks)
{
    ThreadPool pool(4);
    std::vector<std::uint64_t> out(5000, 0);
    parallelFor(pool, out.size(),
                [&out](std::size_t i) { out[i] = i * 3 + 1; });
    std::uint64_t sum = std::accumulate(out.begin(), out.end(),
                                        std::uint64_t{0});
    // sum_{i<5000} (3i + 1) = 3 * 4999 * 5000 / 2 + 5000
    EXPECT_EQ(sum, 3ull * 4999 * 5000 / 2 + 5000);
}

TEST(ThreadPool, StatsAccountForEveryExecutedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { ++count; });
    pool.waitIdle();
    ASSERT_EQ(count.load(), 200);
    // Every executed task was popped exactly once, from somewhere.
    const ThreadPool::Stats s = pool.stats();
    EXPECT_EQ(s.localPops + s.externalPops + s.steals, 200u);
}

TEST(ThreadPool, StatsAreCumulativeAcrossBatches)
{
    ThreadPool pool(2);
    parallelFor(pool, 16, [](std::size_t) {});
    const ThreadPool::Stats first = pool.stats();
    EXPECT_EQ(first.localPops + first.externalPops + first.steals, 16u);
    parallelFor(pool, 16, [](std::size_t) {});
    const ThreadPool::Stats second = pool.stats();
    EXPECT_EQ(second.localPops + second.externalPops + second.steals,
              32u);
    EXPECT_GE(second.idleWaits, first.idleWaits);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

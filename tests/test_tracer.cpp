#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/mini_json.hh"
#include "sim/tracer.hh"

using namespace smartref;

namespace {

/** Records every event it receives, for ordering/filtering checks. */
struct RecordingSink : TraceSink
{
    explicit RecordingSink(std::vector<TraceEvent> &sink) : out(sink) {}
    void write(const TraceEvent &ev) override { out.push_back(ev); }
    std::vector<TraceEvent> &out;
};

/** RAII guard: leaves the global tracer pristine for other tests. */
struct GlobalTracerGuard
{
    ~GlobalTracerGuard() { globalTracer().reset(); }
};

} // namespace

TEST(TraceCategories, NamesRoundTrip)
{
    for (TraceCategory c :
         {TraceCategory::Dram, TraceCategory::Refresh,
          TraceCategory::Counter, TraceCategory::Monitor,
          TraceCategory::RowBuffer, TraceCategory::Queue,
          TraceCategory::Interval}) {
        EXPECT_EQ(parseTraceCategories(toString(c)), c);
    }
    EXPECT_EQ(parseTraceCategories("all"), TraceCategory::All);
}

TEST(TraceCategories, ListCombinesIntoMask)
{
    const auto mask = parseTraceCategories("refresh,counter");
    const auto bits = static_cast<std::uint32_t>(mask);
    EXPECT_EQ(bits, static_cast<std::uint32_t>(TraceCategory::Refresh) |
                        static_cast<std::uint32_t>(TraceCategory::Counter));
}

TEST(TraceCategories, UnknownNameIsFatal)
{
    EXPECT_THROW(parseTraceCategories("bogus"), std::runtime_error);
    EXPECT_THROW(parseTraceCategories("refresh,bogus"),
                 std::runtime_error);
}

TEST(Tracer, EnabledNeedsBothSinkAndCategory)
{
    Tracer tracer;
    // Default mask is All, but no sink is attached yet.
    EXPECT_FALSE(tracer.enabled(TraceCategory::Refresh));

    std::vector<TraceEvent> events;
    tracer.addSink(std::make_unique<RecordingSink>(events));
    EXPECT_TRUE(tracer.enabled(TraceCategory::Refresh));

    tracer.setCategories(TraceCategory::Counter);
    EXPECT_FALSE(tracer.enabled(TraceCategory::Refresh));
    EXPECT_TRUE(tracer.enabled(TraceCategory::Counter));

    tracer.setCategories(TraceCategory::None);
    EXPECT_FALSE(tracer.enabled(TraceCategory::Counter));
}

#ifndef SMARTREF_TRACING_DISABLED

TEST(Tracer, MacroFiltersByCategory)
{
    GlobalTracerGuard guard;
    std::vector<TraceEvent> events;
    globalTracer().addSink(std::make_unique<RecordingSink>(events));
    globalTracer().setCategories(TraceCategory::Refresh);

    SMARTREF_TRACE(TraceCategory::Refresh, 100, "wanted");
    SMARTREF_TRACE(TraceCategory::Counter, 200, "filtered");
    SMARTREF_TRACE_COUNTER(TraceCategory::Queue, 300, "alsoFiltered", 1.0);

    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "wanted");
    EXPECT_EQ(events[0].tick, 100u);
    EXPECT_EQ(globalTracer().emitted(), 1u);
}

#endif // SMARTREF_TRACING_DISABLED

TEST(Tracer, EventsReachSinksInEmissionOrder)
{
    Tracer tracer;
    std::vector<TraceEvent> events;
    tracer.addSink(std::make_unique<RecordingSink>(events));

    tracer.emit(TraceCategory::Dram, 10, "first", 0, 1, 2);
    tracer.emit(TraceCategory::Dram, 20, "second", 0, 1, 3, 7.5, 100);
    tracer.emitCounter(TraceCategory::Queue, 30, "depth", 4.0);

    ASSERT_EQ(events.size(), 3u);
    EXPECT_STREQ(events[0].name, "first");
    EXPECT_STREQ(events[1].name, "second");
    EXPECT_STREQ(events[2].name, "depth");
    EXPECT_LT(events[0].tick, events[1].tick);
    EXPECT_LT(events[1].tick, events[2].tick);
    // Zero duration renders as an instant, non-zero as a span.
    EXPECT_EQ(events[0].phase, TracePhase::Instant);
    EXPECT_EQ(events[1].phase, TracePhase::Span);
    EXPECT_EQ(events[1].duration, 100u);
    EXPECT_EQ(events[2].phase, TracePhase::Counter);
    EXPECT_DOUBLE_EQ(events[2].value, 4.0);
}

TEST(ChromeTraceSink, ProducesValidChromeTraceJson)
{
    std::ostringstream oss;
    {
        Tracer tracer;
        tracer.addSink(std::make_unique<ChromeTraceSink>(oss));
        tracer.emit(TraceCategory::Refresh, 2'000'000, "refreshIssuedCbr",
                    1, 3, 42, 5.0);
        tracer.emit(TraceCategory::Dram, 3'000'000, "ACT", 0, 2, 7, 0.0,
                    15'000);
        tracer.emitCounter(TraceCategory::Queue, 4'000'000,
                           "refreshBacklog", 2.0);
        tracer.emit(TraceCategory::Monitor, 5'000'000, "modeCbr", -1, -1,
                    -1, 0.0, 0, "counters \"off\"\n");
        tracer.flush();
    }

    const minijson::Value doc = minijson::parse(oss.str());
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ns");
    const minijson::Value &evs = doc.at("traceEvents");
    ASSERT_TRUE(evs.isArray());
    ASSERT_EQ(evs.array.size(), 4u);

    const minijson::Value &inst = evs.at(0);
    EXPECT_EQ(inst.at("name").str, "refreshIssuedCbr");
    EXPECT_EQ(inst.at("cat").str, "refresh");
    EXPECT_EQ(inst.at("ph").str, "i");
    EXPECT_DOUBLE_EQ(inst.at("ts").number, 2.0); // 2e6 ps = 2 us
    EXPECT_EQ(inst.at("tid").number, 2.0);       // rank 1 -> track 2
    EXPECT_EQ(inst.at("args").at("rank").number, 1.0);
    EXPECT_EQ(inst.at("args").at("bank").number, 3.0);
    EXPECT_EQ(inst.at("args").at("row").number, 42.0);
    EXPECT_EQ(inst.at("args").at("value").number, 5.0);

    const minijson::Value &span = evs.at(1);
    EXPECT_EQ(span.at("ph").str, "X");
    EXPECT_DOUBLE_EQ(span.at("dur").number, 0.015); // 15 ns

    const minijson::Value &ctr = evs.at(2);
    EXPECT_EQ(ctr.at("ph").str, "C");
    EXPECT_EQ(ctr.at("args").at("value").number, 2.0);

    // Escaped detail string survives the round trip.
    EXPECT_EQ(evs.at(3).at("args").at("detail").str, "counters \"off\"\n");
    EXPECT_EQ(evs.at(3).at("tid").number, 0.0); // rank-less track
}

TEST(ChromeTraceSink, EmptyTraceAndRepeatedFinishStayValid)
{
    std::ostringstream oss;
    ChromeTraceSink sink(oss);
    sink.finish();
    sink.finish(); // idempotent
    const minijson::Value doc = minijson::parse(oss.str());
    EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

TEST(CsvTraceSink, WritesHeaderAndOneLinePerEvent)
{
    std::ostringstream oss;
    {
        Tracer tracer;
        tracer.addSink(std::make_unique<CsvTraceSink>(oss));
        tracer.emit(TraceCategory::Counter, 1000, "counterExpiry", 0, 1,
                    99);
        tracer.emit(TraceCategory::Dram, 2000, "RD", 1, 2, 3, 640.0, 500,
                    "burst");
        tracer.flush();
    }

    std::istringstream lines(oss.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line,
              "tick_ps,category,name,rank,bank,row,value,duration_ps,"
              "detail");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "1000,counter,counterExpiry,0,1,99,0,0,");
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "2000,dram,RD,1,2,3,640,500,burst");
    EXPECT_FALSE(std::getline(lines, line));
}

TEST(Tracer, ResetDropsSinksAndRestoresDefaults)
{
    GlobalTracerGuard guard;
    std::vector<TraceEvent> events;
    globalTracer().addSink(std::make_unique<RecordingSink>(events));
    globalTracer().setCategories(TraceCategory::Dram);
    globalTracer().emit(TraceCategory::Dram, 1, "beforeReset");
    EXPECT_EQ(events.size(), 1u);

    globalTracer().reset();
    EXPECT_FALSE(globalTracer().enabled(TraceCategory::Dram));
    EXPECT_EQ(globalTracer().categories(), TraceCategory::All);
    EXPECT_EQ(globalTracer().emitted(), 0u);
    SMARTREF_TRACE(TraceCategory::Dram, 2, "afterReset");
    EXPECT_EQ(events.size(), 1u); // sink was dropped, nothing recorded
}

/**
 * @file
 * Service-layer metrics registry tests. Three contracts dominate:
 *
 *  - concurrency: counters and histograms hammered from N pool
 *    threads land exactly — no lost updates, exact totals, and
 *    min/max/count/sum agree with a serial recomputation (this file
 *    is part of the TSan leg in CI);
 *
 *  - lifetime: handles returned by the registry stay valid across
 *    reset(), which zeroes in place — the property the
 *    SMARTREF_METRIC_* macros' function-local statics rely on;
 *
 *  - golden hygiene: deterministic sweep aggregates are byte-identical
 *    with metrics enabled vs disabled (the runtime kill switch), so
 *    no metric can ever leak into golden bytes.
 *
 * Everything below uses a local MetricsRegistry where possible; the
 * macro tests touch globalMetrics() with test-unique names so they
 * cannot collide with instrumented library code, and are written to
 * pass in both -DSMARTREF_METRICS=ON and =OFF builds.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "sim/metrics.hh"
#include "sim/mini_json.hh"
#include "sim/thread_pool.hh"

#include "harness/sweep.hh"

using namespace smartref;

namespace {

SweepGrid
tinyGrid()
{
    SweepGrid g;
    g.name = "metricstest";
    g.configs = {"2gb"};
    g.benchmarks = {"mummer"};
    g.policies = {"smart"};
    g.counterBits = {3};
    g.retentionMs = {0};
    return g;
}

SweepRunOptions
fastOptions()
{
    SweepRunOptions opts;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 4 * kMillisecond;
    return opts;
}

/** Restores the runtime kill switch even when an assertion throws. */
struct MetricsEnabledGuard
{
    ~MetricsEnabledGuard() { setMetricsEnabled(true); }
};

} // namespace

// ------------------------------------------------------- single-thread

TEST(MetricCounter, AddAndReset)
{
    MetricCounter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(MetricGauge, LastWriteWins)
{
    MetricGauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-2.0);
    EXPECT_EQ(g.value(), -2.0);
    g.reset();
    EXPECT_EQ(g.value(), 0.0);
}

TEST(MetricHistogram, EmptyIsAllZero)
{
    MetricHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(MetricHistogram, BucketsByBitWidth)
{
    MetricHistogram h;
    // Sample v lands in bucket bit_width(v): 0 -> 0, 1 -> 1, 2..3 -> 2,
    // 4..7 -> 3, ...
    h.observe(0);
    h.observe(1);
    h.observe(2);
    h.observe(3);
    h.observe(7);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 13u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 7u);
}

TEST(MetricHistogram, QuantilesWithinOneOctaveAndClamped)
{
    MetricHistogram h;
    for (std::uint64_t v = 100; v < 200; ++v)
        h.observe(v);
    // All samples sit in buckets 7 ([64,128)) and 8 ([128,256)); any
    // quantile estimate must stay inside the observed [100, 199] range
    // thanks to the min/max clamp.
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
        const double est = h.quantile(q);
        EXPECT_GE(est, 100.0) << "q=" << q;
        EXPECT_LE(est, 199.0) << "q=" << q;
    }
    // A single-sample histogram reports that sample exactly.
    MetricHistogram one;
    one.observe(12345);
    EXPECT_EQ(one.quantile(0.5), 12345.0);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableHandles)
{
    MetricsRegistry reg;
    MetricCounter &a = reg.counter("x.hits");
    MetricCounter &b = reg.counter("x.hits");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(reg.counter("x.hits").value(), 7u);
    // Distinct kinds share a name namespace-per-kind without clashing.
    reg.gauge("x.hits").set(1.0);
    reg.histogram("x.hits").observe(3);
    EXPECT_EQ(reg.counter("x.hits").value(), 7u);
}

TEST(MetricsRegistry, ResetZeroesInPlaceKeepingHandlesValid)
{
    MetricsRegistry reg;
    MetricCounter &c = reg.counter("c");
    MetricHistogram &h = reg.histogram("h");
    c.add(5);
    h.observe(9);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    // The old handle still updates the same instrument.
    c.add(2);
    EXPECT_EQ(reg.counter("c").value(), 2u);
}

// --------------------------------------------------------- concurrency

TEST(MetricsConcurrency, CountersExactUnderPoolHammer)
{
    MetricsRegistry reg;
    MetricCounter &hits = reg.counter("hammer.hits");
    MetricCounter &bytes = reg.counter("hammer.bytes");
    constexpr int kTasks = 64;
    constexpr std::uint64_t kAddsPerTask = 10000;
    {
        ThreadPool pool(4);
        for (int t = 0; t < kTasks; ++t) {
            pool.submit([&hits, &bytes] {
                for (std::uint64_t i = 0; i < kAddsPerTask; ++i) {
                    hits.add();
                    bytes.add(3);
                }
            });
        }
        pool.waitIdle();
    }
    EXPECT_EQ(hits.value(), kTasks * kAddsPerTask);
    EXPECT_EQ(bytes.value(), 3 * kTasks * kAddsPerTask);
}

TEST(MetricsConcurrency, HistogramExactUnderPoolHammer)
{
    MetricsRegistry reg;
    MetricHistogram &h = reg.histogram("hammer.wall");
    constexpr int kTasks = 32;
    constexpr std::uint64_t kObsPerTask = 4000;
    {
        ThreadPool pool(4);
        for (int t = 0; t < kTasks; ++t) {
            pool.submit([&h, t] {
                for (std::uint64_t i = 0; i < kObsPerTask; ++i)
                    h.observe(static_cast<std::uint64_t>(t) * kObsPerTask
                              + i);
            });
        }
        pool.waitIdle();
    }
    constexpr std::uint64_t n = kTasks * kObsPerTask;
    EXPECT_EQ(h.count(), n);
    EXPECT_EQ(h.sum(), n * (n - 1) / 2);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), n - 1);
}

TEST(MetricsConcurrency, RacingFindOrCreateYieldsOneInstrument)
{
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < 1000; ++i)
                reg.counter("race.create").add();
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(reg.counter("race.create").value(), 8000u);
}

// ----------------------------------------------------------- snapshots

TEST(MetricsSnapshot, JsonSchemaAndValues)
{
    MetricsRegistry reg;
    reg.counter("a.hits").add(3);
    reg.gauge("a.depth").set(2.5);
    reg.histogram("a.wall").observe(10);
    reg.histogram("a.wall").observe(20);

    const minijson::Value root = minijson::parse(reg.snapshotJson());
    EXPECT_EQ(root.at("schema").str, "smartref-metrics-v1");
    EXPECT_TRUE(root.has("meta"));
    EXPECT_GE(root.at("uptimeSeconds").number, 0.0);
    EXPECT_EQ(root.at("counters").at("a.hits").number, 3.0);
    EXPECT_EQ(root.at("gauges").at("a.depth").number, 2.5);
    const minijson::Value &h = root.at("histograms").at("a.wall");
    EXPECT_EQ(h.at("count").number, 2.0);
    EXPECT_EQ(h.at("sum").number, 30.0);
    EXPECT_EQ(h.at("min").number, 10.0);
    EXPECT_EQ(h.at("max").number, 20.0);
    EXPECT_GE(h.at("p50").number, 10.0);
    EXPECT_LE(h.at("p99").number, 20.0);
}

TEST(MetricsSnapshot, PrometheusExposition)
{
    MetricsRegistry reg;
    reg.counter("result_cache.hits").add(5);
    reg.gauge("thread_pool.queue_depth").set(1.0);
    reg.histogram("sweep.job_wall_us").observe(100);

    std::ostringstream os;
    reg.writePrometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE smartref_result_cache_hits counter"),
              std::string::npos);
    EXPECT_NE(text.find("smartref_result_cache_hits 5"),
              std::string::npos);
    EXPECT_NE(text.find("smartref_thread_pool_queue_depth"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE smartref_sweep_job_wall_us histogram"),
        std::string::npos);
    EXPECT_NE(text.find("smartref_sweep_job_wall_us_count 1"),
              std::string::npos);
    EXPECT_NE(text.find("smartref_sweep_job_wall_us_sum 100"),
              std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\"} 1"), std::string::npos);
}

// -------------------------------------------------- macros + switches

TEST(MetricsMacros, HonourCompileAndRuntimeSwitches)
{
    MetricsEnabledGuard guard;
    // Test-unique names: the global registry is shared with the
    // instrumented library code.
    const std::uint64_t before =
        globalMetrics().counter("test.macro.inc").value();

    setMetricsEnabled(false);
    SMARTREF_METRIC_INC("test.macro.inc");
    EXPECT_EQ(globalMetrics().counter("test.macro.inc").value(), before)
        << "macro must be inert while disabled";

    setMetricsEnabled(true);
    SMARTREF_METRIC_INC("test.macro.inc");
    SMARTREF_METRIC_ADD("test.macro.inc", 2);
    const std::uint64_t expected =
        kMetricsCompiledIn ? before + 3 : before;
    EXPECT_EQ(globalMetrics().counter("test.macro.inc").value(),
              expected);

    SMARTREF_METRIC_SET("test.macro.gauge", 7);
    SMARTREF_METRIC_OBSERVE("test.macro.hist", 31);
    if (kMetricsCompiledIn) {
        EXPECT_EQ(globalMetrics().gauge("test.macro.gauge").value(),
                  7.0);
        EXPECT_EQ(
            globalMetrics().histogram("test.macro.hist").count(), 1u);
    } else {
        EXPECT_EQ(globalMetrics().gauge("test.macro.gauge").value(),
                  0.0);
        EXPECT_EQ(
            globalMetrics().histogram("test.macro.hist").count(), 0u);
    }
}

// ------------------------------------------------------ golden hygiene

TEST(MetricsGoldenHygiene, SweepAggregatesIdenticalOnVsOff)
{
    MetricsEnabledGuard guard;
    const SweepGrid grid = tinyGrid();
    const SweepRunOptions opts = fastOptions();

    setMetricsEnabled(true);
    const auto onResults = runSweep(grid, opts);
    std::ostringstream onJson, onCsv;
    writeSweepJson(grid, opts, onResults, onJson);
    writeSweepCsv(onResults, onCsv);

    setMetricsEnabled(false);
    const auto offResults = runSweep(grid, opts);
    std::ostringstream offJson, offCsv;
    writeSweepJson(grid, opts, offResults, offJson);
    writeSweepCsv(offResults, offCsv);

    // The whole point of the sidecar contract: instrumentation must
    // never perturb deterministic aggregates, byte for byte.
    EXPECT_EQ(onJson.str(), offJson.str());
    EXPECT_EQ(onCsv.str(), offCsv.str());
    // ("metrics" itself appears: the aggregate's per-job simulation
    // metrics. What must not appear is anything from the registry
    // snapshot or the tracing layer.)
    EXPECT_EQ(onJson.str().find("smartref-metrics-v1"),
              std::string::npos);
    EXPECT_EQ(onJson.str().find("traceId"), std::string::npos);
}

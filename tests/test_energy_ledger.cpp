/**
 * @file
 * EnergyLedger tests: ulp distance, hook accumulation, interval
 * bucketing, overhead idempotence, JSON export shape, and the
 * conservation invariant end-to-end — a ledger attached for a whole
 * run reconciles against the power model, a late-attached one does
 * not, and the exported conservation-check JSON gates against the
 * stats JSON through `smartref_statdiff --subset` semantics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dram/energy_ledger.hh"
#include "harness/experiment.hh"
#include "harness/statdiff.hh"
#include "sim/mini_json.hh"
#include "sim/stats_json.hh"

using namespace smartref;

namespace {

EnergyLedger::Shape
smallShape()
{
    return {2, 4};
}

} // namespace

TEST(EnergyLedger, UlpDistanceCountsRepresentableSteps)
{
    EXPECT_EQ(ulpDistance(1.0, 1.0), 0u);
    EXPECT_EQ(ulpDistance(0.0, 0.0), 0u);
    const double next = std::nextafter(1.0, 2.0);
    EXPECT_EQ(ulpDistance(1.0, next), 1u);
    EXPECT_EQ(ulpDistance(next, 1.0), 1u);
    EXPECT_GT(ulpDistance(1.0, 1.0 + 1e-9), 1u);
}

TEST(EnergyLedger, HooksAccumulateTotalsAndCellCounts)
{
    EnergyLedger ledger(smallShape());
    ledger.onActivate(0, 0, 1, 2e-9);
    ledger.onActivate(0, 0, 1, 2e-9);
    ledger.onRead(0, 1, 3, 3e-9);
    ledger.onWrite(0, 1, 0, 5e-9);
    EXPECT_DOUBLE_EQ(ledger.totals().act, 4e-9);
    EXPECT_DOUBLE_EQ(ledger.totals().read, 3e-9);
    EXPECT_DOUBLE_EQ(ledger.totals().write, 5e-9);

    const EnergyLedger::Cell counts = ledger.cellTotals();
    EXPECT_EQ(counts.acts, 2u);
    EXPECT_EQ(counts.reads, 1u);
    EXPECT_EQ(counts.writes, 1u);
}

TEST(EnergyLedger, RefreshHookSplitsOpenPenalty)
{
    EnergyLedger ledger(smallShape());
    ledger.onRefresh(0, 0, 0, /*bankWasOpen=*/false, 7e-9, 0.0);
    ledger.onRefresh(0, 0, 0, /*bankWasOpen=*/true, 7e-9, 2e-9);
    // Two separate += per open refresh, mirroring the power model's
    // accumulation order, so the shadow stays bit-identical.
    EXPECT_DOUBLE_EQ(ledger.totals().refresh, (7e-9 + 7e-9) + 2e-9);
    const EnergyLedger::Cell counts = ledger.cellTotals();
    EXPECT_EQ(counts.refreshesClosed, 1u);
    EXPECT_EQ(counts.refreshesOpen, 1u);
}

TEST(EnergyLedger, BackgroundResidencySplitsAcrossIntervals)
{
    EnergyLedger ledger(smallShape(), 4 * kMillisecond);
    // 3 ms .. 5 ms straddles the 4 ms interval boundary.
    ledger.onBackground(3 * kMillisecond, 5 * kMillisecond, 1,
                        RankPowerState::PrechargeStandby, 0.5);
    ASSERT_GE(ledger.intervals().size(), 2u);
    const auto state =
        static_cast<std::size_t>(RankPowerState::PrechargeStandby);
    EXPECT_EQ(ledger.intervals()[0].background[1].ticks[state],
              kMillisecond);
    EXPECT_EQ(ledger.intervals()[1].background[1].ticks[state],
              kMillisecond);
    EXPECT_DOUBLE_EQ(ledger.totals().background,
                     0.5 * 2e-3); // 0.5 W for 2 ms
}

TEST(EnergyLedger, OverheadIsIdempotentAndJoinsTheTotal)
{
    EnergyLedger ledger(smallShape());
    ledger.setOverhead(2.0);
    ledger.setOverhead(3.0);
    EXPECT_DOUBLE_EQ(ledger.totals().overhead, 3.0);
    EXPECT_DOUBLE_EQ(ledger.totals().total(), 3.0);
}

TEST(EnergyLedger, JsonExportParsesAndAgreesWithAccessors)
{
    EnergyLedger ledger(smallShape());
    ledger.onActivate(kMillisecond, 0, 2, 2e-9);
    ledger.onRefresh(kMillisecond, 1, 1, false, 7e-9, 0.0);
    ledger.setOverhead(1e-6);
    std::ostringstream oss;
    ledger.writeJson(oss, "{\"schemaVersion\":\"x\"}");
    const minijson::Value v = minijson::parse(oss.str());
    EXPECT_EQ(v.at("schema").str, "smartref-ledger-v1");
    EXPECT_EQ(v.at("shape").at("ranks").number, 2.0);
    EXPECT_EQ(v.at("counts").at("acts").number, 1.0);
    EXPECT_EQ(v.at("counts").at("refreshesClosed").number, 1.0);
    EXPECT_DOUBLE_EQ(v.at("totals").at("actEnergy").number, 2e-9);
    EXPECT_DOUBLE_EQ(v.at("totals").at("overheadEnergy").number, 1e-6);
    // Only touched cells are exported.
    ASSERT_EQ(v.at("intervals").array.size(), 1u);
    EXPECT_EQ(v.at("intervals").at(0).at("cells").array.size(), 2u);
}

TEST(EnergyLedger, WholeRunConservesAgainstThePowerModel)
{
    const DramConfig dram = dramConfigByName("2gb");
    EnergyLedger ledger(
        EnergyLedger::Shape{dram.org.ranks, dram.org.banks});
    ExperimentOptions opts;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 4 * kMillisecond;
    opts.ledger = &ledger;
    opts.checkConservation = true; // fatal on violation
    EXPECT_NO_THROW(runConventional(findProfile("mummer"), dram,
                                    policyFromString("smart"), opts));
    EXPECT_GT(ledger.cellTotals().acts, 0u);
    EXPECT_GT(ledger.totals().total(), 0.0);
}

TEST(EnergyLedger, ThrowawayLedgerChecksConservationWhenNoneAttached)
{
    const DramConfig dram = dramConfigByName("2gb");
    ExperimentOptions opts;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 4 * kMillisecond;
    opts.checkConservation = true;
    EXPECT_NO_THROW(runConventional(findProfile("gcc"), dram,
                                    policyFromString("cbr"), opts));
}

TEST(EnergyLedger, LateAttachmentFailsReconciliation)
{
    const DramConfig dram = dramConfigByName("2gb");
    SystemConfig cfg;
    cfg.dram = dram;
    cfg.policy = policyFromString("smart");
    System sys(cfg);
    sys.addWorkload(idleParams(dram, 42));
    sys.run(4 * kMillisecond);

    // The module has already accumulated energy this ledger never saw.
    EnergyLedger ledger(
        EnergyLedger::Shape{dram.org.ranks, dram.org.banks});
    sys.dram().setLedger(&ledger);
    sys.run(4 * kMillisecond);
    EXPECT_FALSE(sys.dram().verifyLedger(false));
    sys.dram().setLedger(nullptr); // keep finalize() clean in any build
}

TEST(EnergyLedger, ConservationCheckJsonGatesAgainstStatsJsonSubset)
{
    const DramConfig dram = dramConfigByName("2gb");
    EnergyLedger ledger(
        EnergyLedger::Shape{dram.org.ranks, dram.org.banks});
    SystemConfig cfg;
    cfg.dram = dram;
    cfg.policy = policyFromString("smart");
    cfg.ledger = &ledger;
    System sys(cfg);
    sys.addWorkload(lightParams(dram, 7));
    sys.run(6 * kMillisecond);
    sys.dram().finalize();
    ASSERT_TRUE(sys.dram().verifyLedger(false));
    ledger.setOverhead(sys.refreshPolicy().overheadEnergy());

    const std::string statsPath = testing::TempDir() + "ledger_stats.json";
    const std::string checkPath = testing::TempDir() + "ledger_check.json";
    writeStatsJson(sys, statsPath);
    ledger.writeConservationCheckJson(
        checkPath, sys.dram().power().fullStatName(), "");

    // The CI gate: every shadow total in the check file must match the
    // power stat it names, with the stats file free to carry more.
    const DiffTolerances tol = parseTolerances(
        R"({"default": {"abs": 0.0, "rel": 1e-12}})");
    const DiffResult r = diffMetrics(loadMetrics(checkPath),
                                     loadMetrics(statsPath), tol,
                                     /*subset=*/true);
    EXPECT_TRUE(r.pass())
        << (r.failures.empty()
                ? (r.missingInB.empty() ? "?" : r.missingInB[0])
                : r.failures[0].metric);
    EXPECT_GT(r.passed, 0u);
}

/**
 * @file
 * The Section 8 orthogonality claim, executable: RAPID-style retention
 * classes alone (RetentionAwarePolicy), Smart Refresh alone, and the
 * two composed — all retention-safe, with composition skipping the most
 * refreshes.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

std::shared_ptr<const RetentionClassMap>
makeClasses(const DramConfig &cfg, std::uint64_t seed = 7)
{
    RetentionClassParams params;
    params.seed = seed;
    return std::make_shared<RetentionClassMap>(cfg.org.totalRows(),
                                               params);
}

SystemConfig
classySystem(PolicyKind policy, const DramConfig &dram,
             std::shared_ptr<const RetentionClassMap> classes)
{
    SystemConfig cfg;
    cfg.dram = dram;
    cfg.policy = policy;
    cfg.smart.autoReconfigure = false;
    cfg.retentionClasses = std::move(classes);
    return cfg;
}

} // namespace

TEST(RetentionClassMap, PopulationsMatchFractions)
{
    RetentionClassParams params; // 2 % / 28 % / 70 %
    RetentionClassMap map(100000, params);
    EXPECT_EQ(map.maxMultiplier(), 4u);
    EXPECT_NEAR(static_cast<double>(map.population(1)), 2000.0, 400.0);
    EXPECT_NEAR(static_cast<double>(map.population(2)), 28000.0, 1500.0);
    EXPECT_NEAR(static_cast<double>(map.population(4)), 70000.0, 1500.0);
    EXPECT_EQ(map.population(1) + map.population(2) + map.population(4),
              100000u);
}

TEST(RetentionClassMap, DeterministicPerSeed)
{
    RetentionClassParams params;
    RetentionClassMap a(1000, params), b(1000, params);
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_EQ(a.multiplier(i), b.multiplier(i));
}

TEST(RetentionClassMap, IdealRateBelowBaseline)
{
    RetentionClassMap map(131072, RetentionClassParams{});
    const double ideal = map.idealRefreshRate(64 * kMillisecond);
    // Baseline is 2.048 M/s; with 70 % of rows at 4x and 28 % at 2x the
    // ideal is roughly 0.02 + 0.28/2 + 0.70/4 = 33.5 % of it.
    EXPECT_LT(ideal, 2048000.0 * 0.40);
    EXPECT_GT(ideal, 2048000.0 * 0.25);
}

TEST(RetentionClassMap, RejectsBadParams)
{
    RetentionClassParams bad;
    bad.classes = {{1, 0.5}, {3, 0.5}}; // 3 is not a power of two
    EXPECT_THROW(RetentionClassMap(100, bad), std::logic_error);
    bad.classes = {{1, 0.5}, {2, 0.2}}; // fractions do not sum to 1
    EXPECT_THROW(RetentionClassMap(100, bad), std::logic_error);
    bad.classes = {{2, 0.5}, {2, 0.5}}; // not ascending
    EXPECT_THROW(RetentionClassMap(100, bad), std::logic_error);
}

TEST(RetentionAware, SafeAndSkipsOnIdleModule)
{
    const DramConfig dram = tcfg::tinyConfig();
    auto classes = makeClasses(dram);
    System sys(classySystem(PolicyKind::RetentionAware, dram, classes));
    const Tick retention = dram.timing.retention;
    sys.run(retention); // first pass refreshes everything
    const std::uint64_t firstPass = sys.dram().totalRefreshes();
    sys.run(4 * retention);
    const std::uint64_t steady =
        sys.dram().totalRefreshes() - firstPass;

    EXPECT_EQ(sys.dram().retention().violations(), 0u);
    EXPECT_EQ(sys.dram().retention().finalCheck(sys.eventQueue().now()),
              0u);
    // Steady state must sit near the ideal multi-rate count and well
    // below the 4-intervals-of-everything baseline.
    const double baseline = 4.0 * dram.org.totalRows();
    EXPECT_LT(static_cast<double>(steady), baseline * 0.5);
    EXPECT_GT(static_cast<double>(steady), baseline * 0.25);
}

TEST(RetentionAware, RequiresClassMap)
{
    SystemConfig cfg;
    cfg.dram = tcfg::tinyConfig();
    cfg.policy = PolicyKind::RetentionAware;
    EXPECT_THROW(System sys(cfg), std::logic_error);
}

TEST(SmartWithClasses, MultiRateCountersAreSafe)
{
    const DramConfig dram = tcfg::tinyConfig();
    auto classes = makeClasses(dram);
    System sys(classySystem(PolicyKind::Smart, dram, classes));
    // Widened counters: 3 base bits + 2 for the 4x class.
    EXPECT_EQ(sys.smartPolicy()->counters().bits(), 5u);
    sys.run(6 * dram.timing.retention);
    EXPECT_EQ(sys.dram().retention().violations(), 0u);
    EXPECT_EQ(sys.dram().retention().finalCheck(sys.eventQueue().now()),
              0u);
}

TEST(SmartWithClasses, SkipsMoreThanEitherAlone)
{
    const DramConfig dram = tcfg::tinyConfig();
    auto classes = makeClasses(dram);
    const Tick retention = dram.timing.retention;

    auto steadyRefreshes = [&](PolicyKind kind, bool withClasses) {
        System sys(classySystem(kind, dram,
                                withClasses ? classes : nullptr));
        sys.run(2 * retention); // absorb first-interval transients
        const std::uint64_t warm = sys.dram().totalRefreshes();
        sys.run(4 * retention);
        EXPECT_EQ(sys.dram().retention().violations(), 0u);
        return sys.dram().totalRefreshes() - warm;
    };

    const std::uint64_t cbr = steadyRefreshes(PolicyKind::Cbr, false);
    const std::uint64_t rapidOnly =
        steadyRefreshes(PolicyKind::RetentionAware, true);
    const std::uint64_t combined =
        steadyRefreshes(PolicyKind::Smart, true);

    // On an idle module, access-driven skipping contributes nothing, so
    // "combined" reduces to the class-driven rate: it must match
    // RAPID-only (and beat CBR), demonstrating the mechanisms coexist.
    EXPECT_LT(rapidOnly, cbr);
    EXPECT_LT(combined, cbr);
    EXPECT_NEAR(static_cast<double>(combined),
                static_cast<double>(rapidOnly),
                static_cast<double>(rapidOnly) * 0.25);
}

TEST(SmartWithClasses, AccessesStillSkipOnTop)
{
    // Under traffic, the combined scheme must beat RAPID-only: touched
    // rows skip even their class-deadline refreshes.
    const DramConfig dram = tcfg::tinyConfig();
    auto classes = makeClasses(dram);
    const Tick retention = dram.timing.retention;

    auto run = [&](PolicyKind kind) {
        System sys(classySystem(kind, dram, classes));
        WorkloadParams wp;
        wp.footprintRows = dram.org.totalRows() / 2;
        wp.rowVisitsPerSecond =
            static_cast<double>(wp.footprintRows) /
            (static_cast<double>(retention) /
             static_cast<double>(kSecond)) *
            2.0;
        wp.seed = 5;
        sys.addWorkload(wp);
        sys.run(2 * retention);
        const std::uint64_t warm = sys.dram().totalRefreshes();
        sys.run(6 * retention);
        EXPECT_EQ(sys.dram().retention().violations(), 0u);
        EXPECT_EQ(
            sys.dram().retention().finalCheck(sys.eventQueue().now()),
            0u);
        return sys.dram().totalRefreshes() - warm;
    };

    const std::uint64_t rapidOnly = run(PolicyKind::RetentionAware);
    const std::uint64_t combined = run(PolicyKind::Smart);
    EXPECT_LT(combined, rapidOnly);
}

TEST(TrackerClassLimits, PerRowDeadlinesApply)
{
    const DramConfig dram = tcfg::tinyConfig();
    auto classes = makeClasses(dram);
    System sys(classySystem(PolicyKind::Cbr, dram, classes));
    // Find one 4x row and check its limit.
    for (std::uint64_t i = 0; i < dram.org.totalRows(); ++i) {
        if (classes->multiplier(i) == 4) {
            const auto row =
                static_cast<std::uint32_t>(i % dram.org.rows);
            const auto rb = i / dram.org.rows;
            const auto bank =
                static_cast<std::uint32_t>(rb % dram.org.banks);
            const auto rank =
                static_cast<std::uint32_t>(rb / dram.org.banks);
            EXPECT_EQ(sys.dram().retention().rowLimit(rank, bank, row),
                      4 * dram.timing.retention);
            return;
        }
    }
    FAIL() << "no 4x row found";
}

TEST(SmartWithClasses, AutoReconfigureTransitionsStaySafe)
{
    // Mode switches with multi-rate counters: the overlap plus the
    // counter reset on every CBR refresh carries each row's *class*
    // deadline across the handover (a 4x row re-enabled with a full
    // counter could otherwise exceed 4x retention).
    const DramConfig dram = tcfg::tinyConfig();
    auto classes = makeClasses(dram);
    SystemConfig cfg = classySystem(PolicyKind::Smart, dram, classes);
    cfg.smart.autoReconfigure = true;
    System sys(cfg);

    // Busy (keeps Smart on), then idle (falls back to CBR), then busy
    // again (re-enables) — spanning several 4x-class deadlines.
    const Tick retention = dram.timing.retention;
    WorkloadParams busy1;
    busy1.name = "busy1";
    busy1.footprintRows = dram.org.totalRows() / 2;
    busy1.rowVisitsPerSecond =
        static_cast<double>(busy1.footprintRows) /
        (static_cast<double>(retention) / static_cast<double>(kSecond)) *
        2.0;
    busy1.stopAfter = 4 * retention;
    busy1.seed = 5;
    WorkloadParams busy2 = busy1;
    busy2.name = "busy2";
    busy2.startAfter = 12 * retention;
    busy2.stopAfter = kTickMax;
    busy2.seed = 6;
    sys.addWorkload(busy1);
    sys.addWorkload(busy2);

    sys.run(24 * retention);
    EXPECT_GE(sys.smartPolicy()->monitor().switchesToCbr(), 1u);
    EXPECT_GE(sys.smartPolicy()->monitor().switchesToSmart(), 1u);
    EXPECT_EQ(sys.dram().retention().violations(), 0u);
    EXPECT_EQ(sys.dram().retention().finalCheck(sys.eventQueue().now()),
              0u);
}

#include <gtest/gtest.h>

#include "harness/cpu_system.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

CpuSystemConfig
tinyCpuSystem(PolicyKind policy, std::uint32_t cores = 2)
{
    CpuSystemConfig cfg;
    cfg.dram = tcfg::tinyConfig();
    cfg.policy = policy;
    cfg.smart.autoReconfigure = false;
    cfg.numCores = cores;
    cfg.l1.sizeBytes = 4 * kKiB;
    cfg.l2.sizeBytes = 16 * kKiB;
    return cfg;
}

CoreParams
core(const std::string &name)
{
    CoreParams p;
    p.name = name;
    p.frequencyGHz = 2.0;
    p.baseIpc = 1.0;
    p.accessesPerKiloInstr = 50.0;
    return p;
}

WorkloadParams
corePattern(const DramConfig &dram, std::uint64_t offset,
            std::uint64_t seed)
{
    WorkloadParams wp;
    // A footprint far larger than L2 so DRAM sees steady traffic.
    wp.footprintRows = dram.org.totalRows() / 2;
    wp.accessesPerVisit = 2;
    wp.randomJumpProb = 0.1;
    wp.readFraction = 0.8;
    wp.rowStride = 2;
    wp.rowOffset = offset;
    wp.seed = seed;
    return wp;
}

} // namespace

TEST(CpuSystem, CoresMakeProgressAndDramStaysSafe)
{
    CpuSystem sys(tinyCpuSystem(PolicyKind::Smart));
    sys.addCore(core("c0"), corePattern(sys.config().dram, 0, 1));
    sys.addCore(core("c1"), corePattern(sys.config().dram, 1, 2));
    sys.run(3 * sys.config().dram.timing.retention);

    EXPECT_GT(sys.core(0).instructionsRetired(), 100000u);
    EXPECT_GT(sys.core(1).instructionsRetired(), 100000u);
    EXPECT_GT(sys.dram().reads() + sys.dram().writes(), 0u);
    EXPECT_EQ(sys.dram().retention().violations(), 0u);
    EXPECT_EQ(sys.dram().retention().finalCheck(sys.eventQueue().now()),
              0u);
}

TEST(CpuSystem, CacheHitsKeepIpcAboveMemoryBound)
{
    // A tiny footprint lives in L1: IPC approaches the base rate.
    CpuSystem sys(tinyCpuSystem(PolicyKind::Cbr, 1));
    WorkloadParams wp = corePattern(sys.config().dram, 0, 3);
    wp.footprintRows = 1;
    wp.rowStride = 1;
    wp.randomJumpProb = 0.0;
    sys.addCore(core("c0"), wp);
    sys.run(kMillisecond);
    EXPECT_GT(sys.core(0).effectiveIpc(sys.eventQueue().now()), 0.9);
}

TEST(CpuSystem, RefusesTooManyCores)
{
    CpuSystem sys(tinyCpuSystem(PolicyKind::Cbr, 1));
    sys.addCore(core("c0"), corePattern(sys.config().dram, 0, 1));
    EXPECT_THROW(
        sys.addCore(core("c1"), corePattern(sys.config().dram, 1, 2)),
        std::logic_error);
}

TEST(CpuSystem, DeterministicInstructionCounts)
{
    auto run = [] {
        CpuSystem sys(tinyCpuSystem(PolicyKind::Smart));
        sys.addCore(core("c0"), corePattern(sys.config().dram, 0, 1));
        sys.addCore(core("c1"), corePattern(sys.config().dram, 1, 2));
        sys.run(2 * sys.config().dram.timing.retention);
        return sys.totalInstructions();
    };
    EXPECT_EQ(run(), run());
}

TEST(CpuSystem, SmartRefreshDoesNotSlowExecution)
{
    // The paper's Fig. 18 claim in closed loop: Smart Refresh never
    // hurts, and usually helps slightly (fewer refresh stalls).
    auto instructions = [](PolicyKind kind) {
        CpuSystem sys(tinyCpuSystem(kind));
        sys.addCore(core("c0"), corePattern(sys.config().dram, 0, 1));
        sys.addCore(core("c1"), corePattern(sys.config().dram, 1, 2));
        sys.run(4 * sys.config().dram.timing.retention);
        EXPECT_EQ(sys.dram().retention().violations(), 0u);
        return sys.totalInstructions();
    };
    const std::uint64_t cbr = instructions(PolicyKind::Cbr);
    const std::uint64_t smart = instructions(PolicyKind::Smart);
    // Allow a whisker of noise, but no real slowdown.
    EXPECT_GE(static_cast<double>(smart),
              static_cast<double>(cbr) * 0.999);
}

TEST(CpuSystem, SharedL2SeesBothCores)
{
    CpuSystem sys(tinyCpuSystem(PolicyKind::Cbr));
    sys.addCore(core("c0"), corePattern(sys.config().dram, 0, 1));
    sys.addCore(core("c1"), corePattern(sys.config().dram, 1, 2));
    sys.run(kMillisecond);
    EXPECT_GT(sys.hierarchy().sharedL2().hits() +
                  sys.hierarchy().sharedL2().misses(),
              0u);
    EXPECT_GT(sys.hierarchy().l1(0).misses(), 0u);
    EXPECT_GT(sys.hierarchy().l1(1).misses(), 0u);
}

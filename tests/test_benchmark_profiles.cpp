#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/benchmark_profiles.hh"

using namespace smartref;

TEST(Profiles, ThirtyTwoBenchmarkRuns)
{
    EXPECT_EQ(allProfiles().size(), 32u);
}

TEST(Profiles, SuitesMatchPaper)
{
    std::map<std::string, int> counts;
    for (const auto &p : allProfiles())
        ++counts[p.suite];
    EXPECT_EQ(counts["Biobench"], 6);
    EXPECT_EQ(counts["SPLASH2"], 10);
    EXPECT_EQ(counts["SPECint2000"], 6);
    EXPECT_EQ(counts["2Proc"], 10);
}

TEST(Profiles, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &p : allProfiles())
        names.insert(p.name);
    EXPECT_EQ(names.size(), allProfiles().size());
}

TEST(Profiles, PaperAnchors)
{
    // Quoted in the paper's text.
    EXPECT_DOUBLE_EQ(findProfile("fasta").reduction2gb, 0.26);
    EXPECT_DOUBLE_EQ(findProfile("water-spatial").reduction2gb, 0.857);
    EXPECT_DOUBLE_EQ(findProfile("mummer").reduction3d, 0.42);
    EXPECT_DOUBLE_EQ(findProfile("clustalw").reduction3d, 0.42);
    EXPECT_DOUBLE_EQ(findProfile("fasta").reduction3d, 0.04);
    // perl_twolf is the strongest pair in Fig. 8.
    for (const auto &p : allProfiles()) {
        if (p.pair) {
            EXPECT_LE(p.reduction2gb,
                      findProfile("perl_twolf").reduction2gb);
        }
    }
}

TEST(Profiles, PairsAreMarked)
{
    EXPECT_TRUE(findProfile("gcc_twolf").pair);
    EXPECT_FALSE(findProfile("gcc").pair);
}

TEST(Profiles, UnknownNameFatals)
{
    EXPECT_THROW(findProfile("quake3"), std::runtime_error);
}

TEST(Profiles, SaneRanges)
{
    for (const auto &p : allProfiles()) {
        EXPECT_GT(p.reduction2gb, 0.0) << p.name;
        EXPECT_LT(p.reduction2gb, 0.9) << p.name;
        EXPECT_GT(p.reduction3d, 0.0) << p.name;
        EXPECT_LT(p.reduction3d, 0.5) << p.name;
        EXPECT_GT(p.readFraction, 0.4) << p.name;
        EXPECT_LE(p.readFraction, 1.0) << p.name;
        EXPECT_GE(p.accessesPerVisit, 1u) << p.name;
        EXPECT_LT(p.randomJumpProb, 0.5) << p.name;
    }
}

TEST(ConventionalParams, SingleBenchmarkDerivation)
{
    const DramConfig cfg = ddr2_2GB();
    const auto params = conventionalParams(findProfile("mummer"), cfg);
    ASSERT_EQ(params.size(), 1u);
    const auto &wp = params[0];
    // Footprint equals the target alive-row count.
    EXPECT_EQ(wp.footprintRows,
              static_cast<std::uint64_t>(0.68 * 131072));
    // Revisit period comfortably under the 56 ms minimum expiry.
    const double revisitSec =
        static_cast<double>(wp.footprintRows) /
        (wp.rowVisitsPerSecond * (1.0 - wp.randomJumpProb));
    EXPECT_LT(revisitSec, 0.050);
    EXPECT_GT(revisitSec, 0.020);
}

TEST(ConventionalParams, PairSplitsFootprintAndRate)
{
    const DramConfig cfg = ddr2_2GB();
    const auto single = conventionalParams(findProfile("perl"), cfg);
    const auto pair = conventionalParams(findProfile("perl_twolf"), cfg);
    ASSERT_EQ(pair.size(), 2u);
    EXPECT_EQ(pair[0].rowStride, 2u);
    EXPECT_EQ(pair[0].rowOffset, 0u);
    EXPECT_EQ(pair[1].rowOffset, 1u);
    EXPECT_NE(pair[0].seed, pair[1].seed);
    // Combined footprint matches the pair's calibration target.
    const std::uint64_t combined =
        pair[0].footprintRows + pair[1].footprintRows;
    EXPECT_NEAR(static_cast<double>(combined), 0.78 * 131072, 2.0);
    (void)single;
}

TEST(ConventionalParams, FourGBScalingIncreasesAbsoluteRows)
{
    const auto p2 = conventionalParams(findProfile("gcc"), ddr2_2GB());
    const auto p4 = conventionalParams(findProfile("gcc"), ddr2_4GB(),
                                       kFourGBRowScale);
    EXPECT_NEAR(static_cast<double>(p4[0].footprintRows),
                1.3 * static_cast<double>(p2[0].footprintRows), 2.0);
}

TEST(ConventionalParams, FootprintCappedByModule)
{
    // A 0.857 coverage on a module SMALLER than 2 GB must clamp.
    DramConfig small = dram3d_64MB();
    const auto params =
        conventionalParams(findProfile("water-spatial"), small);
    EXPECT_LE(params[0].footprintRows,
              static_cast<std::uint64_t>(0.95 * small.org.totalRows()));
}

TEST(ThreeDParams, TwoTierStructure)
{
    const DramConfig threeD = dram3d_64MB();
    const auto params = threeDParams(findProfile("mummer"), threeD);
    ASSERT_EQ(params.size(), 2u); // hot + cold tiers
    EXPECT_NE(params[0].name.find(".hot"), std::string::npos);
    EXPECT_NE(params[1].name.find(".cold"), std::string::npos);
    // Tier footprints sum to the calibration target.
    const std::uint64_t total =
        params[0].footprintRows + params[1].footprintRows;
    EXPECT_NEAR(static_cast<double>(total), 0.42 * 65536, 2.0);
    // Hot tier revisits much faster than the cold tier.
    const double hotRevisit =
        static_cast<double>(params[0].footprintRows) /
        params[0].rowVisitsPerSecond;
    const double coldRevisit =
        static_cast<double>(params[1].footprintRows) /
        params[1].rowVisitsPerSecond;
    EXPECT_LT(hotRevisit, 0.020);
    EXPECT_GT(coldRevisit, 0.030);
}

TEST(ThreeDParams, TiersDoNotOverlap)
{
    const DramConfig threeD = dram3d_64MB();
    const auto params = threeDParams(findProfile("gcc"), threeD);
    ASSERT_EQ(params.size(), 2u);
    // Cold tier starts where the hot tier ends.
    EXPECT_EQ(params[1].rowOffset,
              params[0].rowOffset +
                  params[0].rowStride * params[0].footprintRows);
}

TEST(ThreeDParams, PairsGetFourTiers)
{
    const auto params =
        threeDParams(findProfile("gcc_twolf"), dram3d_64MB());
    EXPECT_EQ(params.size(), 4u);
    // Processes interleave at stride 2.
    for (const auto &wp : params)
        EXPECT_EQ(wp.rowStride, 2u);
}

TEST(ThreeDParams, SameStreamForBothRetentions)
{
    // The 32 ms experiment reuses the 64 ms-calibrated stream.
    const auto p64 = threeDParams(findProfile("perl"), dram3d_64MB());
    const auto p32 =
        threeDParams(findProfile("perl"), dram3d_64MB_32ms());
    ASSERT_EQ(p64.size(), p32.size());
    for (std::size_t i = 0; i < p64.size(); ++i) {
        EXPECT_EQ(p64[i].footprintRows, p32[i].footprintRows);
        EXPECT_DOUBLE_EQ(p64[i].rowVisitsPerSecond,
                         p32[i].rowVisitsPerSecond);
    }
}

TEST(SpecialParams, IdleIsBelowDisableThreshold)
{
    const DramConfig cfg = ddr2_2GB();
    const WorkloadParams idle = idleParams(cfg);
    const double rowsPerInterval = idle.rowVisitsPerSecond * 0.064;
    EXPECT_LT(rowsPerInterval,
              0.01 * static_cast<double>(cfg.org.totalRows()));
}

TEST(SpecialParams, LightIsInsideHysteresisBand)
{
    const DramConfig cfg = ddr2_2GB();
    const WorkloadParams light = lightParams(cfg);
    const double rowsPerInterval = light.rowVisitsPerSecond * 0.064;
    EXPECT_GT(rowsPerInterval,
              0.01 * static_cast<double>(cfg.org.totalRows()));
    EXPECT_LT(rowsPerInterval,
              0.02 * static_cast<double>(cfg.org.totalRows()));
}

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/logging.hh"

using namespace smartref;

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(SMARTREF_PANIC("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(SMARTREF_FATAL("bad config ", "x"), std::runtime_error);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(SMARTREF_ASSERT(1 + 1 == 2, "arithmetic"));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(SMARTREF_ASSERT(false, "must fail"), std::logic_error);
}

TEST(Logging, PanicMessageContainsArguments)
{
    try {
        SMARTREF_PANIC("value=", 123, " name=", "abc");
        FAIL() << "expected panic";
    } catch (const std::logic_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("value=123"), std::string::npos);
        EXPECT_NE(msg.find("name=abc"), std::string::npos);
    }
}

TEST(Logging, LogLevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(Logging, ParseLogLevelNames)
{
    EXPECT_EQ(parseLogLevel("silent"), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_THROW(parseLogLevel("shout"), std::runtime_error);
}

TEST(Logging, LogLevelNamesRoundTrip)
{
    for (LogLevel l : {LogLevel::Silent, LogLevel::Warn, LogLevel::Info,
                       LogLevel::Debug})
        EXPECT_EQ(parseLogLevel(toString(l)), l);
}

/**
 * @file
 * Sweep-subsystem tests: canonical grid expansion, coordinate-derived
 * seeding (pinned literals — changing the derivation breaks published
 * seeds), grid JSON parsing, and the headline determinism contract:
 * -j1 and -j8 produce byte-identical aggregate JSON and CSV.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/sweep.hh"
#include "sim/mini_json.hh"

using namespace smartref;

namespace {

/** A 2-config x 2-benchmark x 2-bit-width grid (8 jobs). */
SweepGrid
smallGridA()
{
    SweepGrid g;
    g.name = "detA";
    g.configs = {"2gb", "3d64"};
    g.benchmarks = {"mummer", "gcc"};
    g.policies = {"smart"};
    g.counterBits = {2, 3};
    g.retentionMs = {0};
    return g;
}

/** A different shape: one config, retention override axis (6 jobs). */
SweepGrid
smallGridB()
{
    SweepGrid g;
    g.name = "detB";
    g.configs = {"3d64"};
    g.benchmarks = {"radix", "fft", "vpr_twolf"};
    g.policies = {"smart"};
    g.counterBits = {3};
    g.retentionMs = {32, 64};
    return g;
}

/** Tiny windows: determinism, not statistics, is under test. */
SweepRunOptions
fastOptions(unsigned jobs)
{
    SweepRunOptions opts;
    opts.jobs = jobs;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 4 * kMillisecond;
    return opts;
}

std::string
aggregateJson(const SweepGrid &grid, const SweepRunOptions &opts)
{
    std::ostringstream oss;
    writeSweepJson(grid, opts, runSweep(grid, opts), oss);
    return oss.str();
}

std::string
aggregateCsv(const SweepGrid &grid, const SweepRunOptions &opts)
{
    std::ostringstream oss;
    writeSweepCsv(runSweep(grid, opts), oss);
    return oss.str();
}

} // namespace

TEST(SweepSeed, PointKeyIsCanonical)
{
    SweepPoint p;
    p.config = "2gb";
    p.benchmark = "mummer";
    p.policy = "smart";
    p.counterBits = 3;
    p.retentionMs = 0;
    EXPECT_EQ(pointKey(p),
              "config=2gb;bench=mummer;policy=smart;bits=3;retentionMs=0");
}

TEST(SweepSeed, DerivedSeedsArePinned)
{
    // These literals are part of the reproducibility contract: published
    // sweep results name these seeds. Do not change the derivation
    // without regenerating EXPERIMENTS.md.
    SweepPoint p;
    p.config = "2gb";
    p.benchmark = "mummer";
    p.policy = "smart";
    p.counterBits = 3;
    p.retentionMs = 0;
    EXPECT_EQ(deriveJobSeed(42, p), 17388960893229350514ULL);
    EXPECT_EQ(deriveJobSeed(7, p), 18177561402676755630ULL);

    p.config = "3d64";
    p.benchmark = "gcc";
    EXPECT_EQ(deriveJobSeed(42, p), 2363407939594536290ULL);

    p = SweepPoint{};
    p.config = "4gb";
    p.benchmark = "radix";
    p.policy = "cbr";
    p.counterBits = 2;
    p.retentionMs = 32;
    EXPECT_EQ(deriveJobSeed(42, p), 6012783005990786846ULL);
}

TEST(SweepSeed, SeedDependsOnEveryCoordinate)
{
    SweepPoint p;
    const std::uint64_t base = deriveJobSeed(42, p);
    auto differs = [base](SweepPoint q) {
        return deriveJobSeed(42, q) != base;
    };
    SweepPoint q = p;
    q.config = "4gb";
    EXPECT_TRUE(differs(q));
    q = p;
    q.benchmark = "gcc";
    EXPECT_TRUE(differs(q));
    q = p;
    q.policy = "cbr";
    EXPECT_TRUE(differs(q));
    q = p;
    q.counterBits = 4;
    EXPECT_TRUE(differs(q));
    q = p;
    q.retentionMs = 32;
    EXPECT_TRUE(differs(q));
}

TEST(SweepGridTest, ExpansionOrderIsCanonical)
{
    // config outermost, then retention, bits, policy, benchmark.
    SweepGrid g;
    g.configs = {"2gb", "3d64"};
    g.benchmarks = {"mummer", "gcc"};
    g.policies = {"smart"};
    g.counterBits = {2, 3};
    g.retentionMs = {0};
    const auto jobs = expandGrid(g, 42);
    ASSERT_EQ(jobs.size(), 8u);
    EXPECT_EQ(jobs[0].point.config, "2gb");
    EXPECT_EQ(jobs[0].point.counterBits, 2u);
    EXPECT_EQ(jobs[0].point.benchmark, "mummer");
    EXPECT_EQ(jobs[1].point.benchmark, "gcc"); // benchmark innermost
    EXPECT_EQ(jobs[2].point.counterBits, 3u);  // bits next
    EXPECT_EQ(jobs[4].point.config, "3d64");   // config outermost
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
}

TEST(SweepGridTest, SeedsAreOrderIndependent)
{
    // The same point gets the same seed in two differently-shaped grids.
    const auto a = expandGrid(smallGridA(), 42);
    SweepGrid single;
    single.configs = {"3d64"};
    single.benchmarks = {"gcc"};
    single.policies = {"smart"};
    single.counterBits = {3};
    single.retentionMs = {0};
    const auto b = expandGrid(single, 42);
    ASSERT_EQ(b.size(), 1u);
    bool found = false;
    for (const auto &job : a) {
        if (pointKey(job.point) == pointKey(b[0].point)) {
            EXPECT_EQ(job.seed, b[0].seed);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(SweepGridTest, FixedModeUsesBaseSeedEverywhere)
{
    const auto jobs = expandGrid(smallGridA(), 42, SeedMode::Fixed);
    for (const auto &job : jobs)
        EXPECT_EQ(job.seed, 42u);
}

TEST(SweepGridTest, AllExpandsToEveryProfile)
{
    SweepGrid g;
    const auto jobs = expandGrid(g, 42);
    EXPECT_EQ(jobs.size(), allProfiles().size());
}

TEST(SweepGridTest, UnknownNamesAreFatal)
{
    // SMARTREF_FATAL throws std::runtime_error with the message.
    SweepGrid g;
    g.configs = {"5gb"};
    EXPECT_THROW(expandGrid(g, 42), std::runtime_error);
    g = SweepGrid{};
    g.benchmarks = {"nosuch"};
    EXPECT_THROW(expandGrid(g, 42), std::runtime_error);
    g = SweepGrid{};
    g.policies = {"nosuch"};
    EXPECT_THROW(expandGrid(g, 42), std::runtime_error);
    g = SweepGrid{};
    g.counterBits = {0};
    EXPECT_THROW(expandGrid(g, 42), std::runtime_error);
}

TEST(SweepGridTest, ParsesJsonDescription)
{
    const SweepGrid g = parseSweepGrid(
        R"({"name":"x","configs":["2gb","4gb"],"benchmarks":["gcc"],
            "policies":["smart","cbr"],"counterBits":[2,4],
            "retentionMs":[0,32]})");
    EXPECT_EQ(g.name, "x");
    EXPECT_EQ(g.configs, (std::vector<std::string>{"2gb", "4gb"}));
    EXPECT_EQ(g.benchmarks, (std::vector<std::string>{"gcc"}));
    EXPECT_EQ(g.policies, (std::vector<std::string>{"smart", "cbr"}));
    EXPECT_EQ(g.counterBits, (std::vector<std::uint32_t>{2, 4}));
    EXPECT_EQ(g.retentionMs, (std::vector<std::uint64_t>{0, 32}));
}

TEST(SweepGridTest, JsonDefaultsAndErrors)
{
    const SweepGrid g = parseSweepGrid(R"({"name":"minimal"})");
    EXPECT_EQ(g.name, "minimal");
    EXPECT_EQ(g.configs, (std::vector<std::string>{"2gb"}));
    EXPECT_EQ(g.benchmarks, (std::vector<std::string>{"all"}));

    EXPECT_THROW(parseSweepGrid("{nope"), std::runtime_error);
    EXPECT_THROW(parseSweepGrid(R"({"benchmark":["gcc"]})"),
                 std::runtime_error);
}

namespace {

/** The message a callable's std::runtime_error carries ("" if none). */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    return "";
}

} // namespace

TEST(SweepGridTest, UnknownJsonMemberSuggestsNearMiss)
{
    const std::string msg = fatalMessage(
        [] { parseSweepGrid(R"({"benchmark":["gcc"]})"); });
    EXPECT_NE(msg.find("unknown sweep grid member 'benchmark'"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("did you mean 'benchmarks'?"), std::string::npos)
        << msg;
    // A name nothing like any axis gets no suggestion.
    const std::string far = fatalMessage(
        [] { parseSweepGrid(R"({"zzzz":["gcc"]})"); });
    EXPECT_EQ(far.find("did you mean"), std::string::npos) << far;
}

TEST(SweepGridTest, UnknownPredefinedGridSuggestsNearMiss)
{
    const std::string msg =
        fatalMessage([] { predefinedGridByName("smok"); });
    EXPECT_NE(msg.find("unknown grid 'smok'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'smoke'?"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("--list-grids"), std::string::npos) << msg;
}

TEST(SweepDeterminism, ParallelAggregatesAreByteIdenticalGridA)
{
    const SweepGrid grid = smallGridA();
    const std::string serialJson = aggregateJson(grid, fastOptions(1));
    const std::string parallelJson = aggregateJson(grid, fastOptions(8));
    EXPECT_EQ(serialJson, parallelJson);
    EXPECT_EQ(aggregateCsv(grid, fastOptions(1)),
              aggregateCsv(grid, fastOptions(8)));
}

TEST(SweepDeterminism, ParallelAggregatesAreByteIdenticalGridB)
{
    const SweepGrid grid = smallGridB();
    EXPECT_EQ(aggregateJson(grid, fastOptions(1)),
              aggregateJson(grid, fastOptions(8)));
}

TEST(SweepDeterminism, RepeatedRunsAreByteIdentical)
{
    const SweepGrid grid = smallGridB();
    EXPECT_EQ(aggregateJson(grid, fastOptions(3)),
              aggregateJson(grid, fastOptions(3)));
}

TEST(SweepJson, AggregateParsesAndCarriesAnchors)
{
    const SweepGrid grid = smallGridA();
    const SweepRunOptions opts = fastOptions(2);
    const minijson::Value root =
        minijson::parse(aggregateJson(grid, opts));
    EXPECT_EQ(root.at("schema").str, "smartref-sweep-v1");
    EXPECT_EQ(root.at("grid").at("name").str, "detA");
    EXPECT_EQ(root.at("options").at("seedMode").str, "derived");

    // Golden geometry/energy anchors (Table 1 and Table 3).
    const minijson::Value &anchors = root.at("anchors");
    EXPECT_DOUBLE_EQ(anchors.at("2gb").at("baselineRefreshesPerSec").number,
                     2048000.0);
    EXPECT_NEAR(anchors.at("2gb").at("busNanojoulesPerAddress").number,
                1.601, 0.001);
    EXPECT_DOUBLE_EQ(
        anchors.at("3d64").at("baselineRefreshesPerSec").number,
        1024000.0);

    const minijson::Value &jobs = root.at("jobs");
    ASSERT_EQ(jobs.array.size(), 8u);
    // Job order is grid order; the seed round-trips through the string.
    EXPECT_EQ(jobs.at(0).at("benchmark").str, "mummer");
    SweepPoint p;
    p.config = "2gb";
    p.benchmark = "mummer";
    p.policy = "smart";
    p.counterBits = 2;
    p.retentionMs = 0;
    EXPECT_EQ(jobs.at(0).at("seed").str,
              std::to_string(deriveJobSeed(42, p)));

    const minijson::Value &summary = root.at("summary");
    ASSERT_EQ(summary.array.size(), 4u); // 2 configs x 2 bit widths
    EXPECT_EQ(summary.at(0).at("jobs").number, 2.0);
    EXPECT_EQ(root.at("totalViolations").number, 0.0);
}

TEST(SweepJob, RetentionOverrideScalesBaselineRate)
{
    SweepJob job;
    job.point.config = "3d64";
    job.point.benchmark = "gcc";
    job.point.retentionMs = 32;
    job.seed = 42;
    const SweepRunOptions opts = fastOptions(1);
    const SweepJobResult r = runSweepJob(job, opts);
    // Halving retention doubles the baseline CBR refresh rate: the
    // 3d64 preset is 1,024,000/s at 64 ms, so 2,048,000/s at 32 ms.
    EXPECT_NEAR(r.comparison.baseline.refreshesPerSec, 2048000.0,
                2048000.0 * 0.01);
}

TEST(SweepFigures, SpecsCoverThePaperConfigs)
{
    EXPECT_EQ(figuresForConfig("2gb").size(), 3u);
    EXPECT_EQ(figuresForConfig("4gb").size(), 3u);
    EXPECT_EQ(figuresForConfig("3d64").size(), 3u);
    EXPECT_EQ(figuresForConfig("3d64-32ms").size(), 4u);
    EXPECT_TRUE(figuresForConfig("edram").empty());
    EXPECT_EQ(figuresForConfig("2gb")[0].id, "fig06");
    EXPECT_EQ(figuresForConfig("3d64-32ms")[3].id, "fig18");
}

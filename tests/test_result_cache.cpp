/**
 * @file
 * Content-addressed result-cache tests. Two contracts dominate:
 *
 *  - key canonicalization: the cache key is a function of the
 *    simulation-semantic coordinates only. It must be stable across
 *    grids/declaration order, change for every semantic axis and run
 *    option (including the sparseCounters and parallelism
 *    only-when-non-default asymmetries), and ignore execution-only
 *    knobs (jobs, shardJobs, telemetry/profile sinks, progress);
 *
 *  - robustness: a truncated/corrupt/mismatched entry is a miss that
 *    gets recomputed and overwritten, never a crash; concurrent
 *    writers are safe via temp-file + atomic rename; warm aggregates
 *    are byte-identical to cold ones.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/result_cache.hh"
#include "harness/sweep.hh"
#include "harness/sweep_telemetry.hh"
#include "sim/provenance.hh"

using namespace smartref;
namespace fs = std::filesystem;

namespace {

/** Fresh empty cache directory per test. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "smartref_" + name;
    fs::remove_all(dir);
    return dir;
}

SweepJob
makeJob(std::uint64_t baseSeed = 42)
{
    SweepJob job;
    job.point = {"2gb", "mummer", "smart", 3, 0, "refpb"};
    job.seed = deriveJobSeed(baseSeed, job.point);
    return job;
}

/** Tiny windows: behaviour, not statistics, is under test. */
SweepRunOptions
fastOptions()
{
    SweepRunOptions opts;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 4 * kMillisecond;
    return opts;
}

SweepGrid
tinyGrid()
{
    SweepGrid g;
    g.name = "cachetest";
    g.configs = {"2gb"};
    g.benchmarks = {"mummer", "gcc"};
    g.policies = {"smart"};
    g.counterBits = {3};
    g.retentionMs = {0};
    return g;
}

std::string
aggregate(const SweepGrid &grid, const SweepRunOptions &opts)
{
    std::ostringstream oss;
    writeSweepJson(grid, opts, runSweep(grid, opts), oss);
    return oss.str();
}

} // namespace

// ---------------------------------------------------------------- keys

TEST(CacheKey, StableAcrossGridsAndRepeatedCalls)
{
    const SweepJob job = makeJob();
    const SweepRunOptions opts = fastOptions();
    // The key is a pure function of (point, seed, options, build):
    // which grid expanded the job, its index, and axis declaration
    // order are irrelevant.
    SweepJob reindexed = job;
    reindexed.index = 17;
    EXPECT_EQ(resultCacheKey(job, opts).hex,
              resultCacheKey(reindexed, opts).hex);
    EXPECT_EQ(resultCacheKey(job, opts).canonical,
              resultCacheKey(job, opts).canonical);

    // Same point reached through two differently-declared grids.
    SweepGrid a = tinyGrid();
    SweepGrid b = tinyGrid();
    b.name = "other";
    b.benchmarks = {"gcc", "radix", "mummer"};
    const auto jobsA = expandGrid(a, 42);
    const auto jobsB = expandGrid(b, 42);
    std::string keyA, keyB;
    for (const auto &j : jobsA)
        if (j.point.benchmark == "mummer")
            keyA = resultCacheKey(j, opts).hex;
    for (const auto &j : jobsB)
        if (j.point.benchmark == "mummer")
            keyB = resultCacheKey(j, opts).hex;
    ASSERT_FALSE(keyA.empty());
    EXPECT_EQ(keyA, keyB);
}

TEST(CacheKey, IncludesBuildFingerprint)
{
    const auto key = resultCacheKey(makeJob(), fastOptions());
    EXPECT_NE(key.canonical.find(buildFingerprint()), std::string::npos);
}

TEST(CacheKey, ExcludesExecutionOnlyKnobs)
{
    const SweepJob job = makeJob();
    SweepRunOptions opts = fastOptions();
    const std::string base = resultCacheKey(job, opts).hex;

    // None of the execution knobs may perturb the key: -j N,
    // --shard-jobs, telemetry/profile/heatmap sinks, progress,
    // log level, conservation checking, the cache config itself.
    opts.jobs = 8;
    opts.shardJobs = 4;
    opts.progress = true;
    opts.profile = true;
    opts.collectHeatmaps = true;
    opts.checkConservation = true;
    opts.logLevel = LogLevel::Debug;
    opts.cacheVerify = true;
    std::ostringstream sink;
    SweepTelemetry telemetry(sink);
    opts.telemetry = &telemetry;
    EXPECT_EQ(base, resultCacheKey(job, opts).hex);
}

TEST(CacheKey, ChangesForEverySemanticCoordinate)
{
    const SweepJob job = makeJob();
    const SweepRunOptions opts = fastOptions();
    const std::string base = resultCacheKey(job, opts).hex;

    const auto withPoint = [&](auto mutate) {
        SweepJob j = job;
        mutate(j.point);
        // Re-derive the seed as expandGrid would: coordinate changes
        // move the seed too, and both enter the canonical string.
        j.seed = deriveJobSeed(42, j.point);
        return resultCacheKey(j, opts).hex;
    };
    EXPECT_NE(base, withPoint([](SweepPoint &p) { p.config = "3d64"; }));
    EXPECT_NE(base,
              withPoint([](SweepPoint &p) { p.benchmark = "gcc"; }));
    EXPECT_NE(base, withPoint([](SweepPoint &p) { p.policy = "cbr"; }));
    EXPECT_NE(base, withPoint([](SweepPoint &p) { p.counterBits = 4; }));
    EXPECT_NE(base,
              withPoint([](SweepPoint &p) { p.retentionMs = 32; }));
    EXPECT_NE(base,
              withPoint([](SweepPoint &p) { p.parallelism = "darp"; }));

    // A different seed alone (fixed-mode sweeps) changes the key.
    SweepJob reseeded = job;
    reseeded.seed = job.seed + 1;
    EXPECT_NE(base, resultCacheKey(reseeded, opts).hex);

    // Every semantic run option changes the key.
    const auto withOpts = [&](auto mutate) {
        SweepRunOptions o = opts;
        mutate(o);
        return resultCacheKey(job, o).hex;
    };
    EXPECT_NE(base, withOpts([](SweepRunOptions &o) {
                  o.warmup = 8 * kMillisecond;
              }));
    EXPECT_NE(base, withOpts([](SweepRunOptions &o) {
                  o.measure = 8 * kMillisecond;
              }));
    EXPECT_NE(base,
              withOpts([](SweepRunOptions &o) { o.segments = 16; }));
    EXPECT_NE(base, withOpts([](SweepRunOptions &o) {
                  o.autoReconfigure = false;
              }));
    EXPECT_NE(base, withOpts([](SweepRunOptions &o) {
                  o.sparseCounters = true;
              }));
}

TEST(CacheKey, SparseAndParallelismJoinOnlyWhenNonDefault)
{
    // The asymmetry is deliberate and pinned: the default (dense
    // counters, refpb parallelism) canonical strings contain no trace
    // of either axis, so keys formed before the axes existed are
    // unchanged. The non-default side must appear.
    const SweepJob job = makeJob();
    SweepRunOptions opts = fastOptions();
    const std::string dense = resultCacheKey(job, opts).canonical;
    EXPECT_EQ(dense.find("sparse"), std::string::npos);
    EXPECT_EQ(dense.find("par="), std::string::npos);

    opts.sparseCounters = true;
    const std::string sparse = resultCacheKey(job, opts).canonical;
    EXPECT_NE(sparse.find(";sparse=1"), std::string::npos);

    SweepJob darp = job;
    darp.point.parallelism = "darp";
    darp.seed = deriveJobSeed(42, darp.point);
    const std::string par = resultCacheKey(darp, opts).canonical;
    EXPECT_NE(par.find(";par=darp"), std::string::npos);
}

// ---------------------------------------------------------- round trip

TEST(ResultCacheStore, RoundTripsAStoredResult)
{
    ResultCache cache(freshDir("rc_roundtrip"));
    const SweepJob job = makeJob();
    const SweepRunOptions opts = fastOptions();
    const ResultCacheKey key = resultCacheKey(job, opts);

    SweepJobResult miss;
    EXPECT_FALSE(cache.lookup(key, miss));
    EXPECT_EQ(cache.stats().misses, 1u);

    const SweepJobResult fresh = runSweepJob(job, opts);
    cache.store(key, job, fresh);
    EXPECT_EQ(cache.stats().stores, 1u);

    SweepJobResult hit;
    ASSERT_TRUE(cache.lookup(key, hit));
    EXPECT_TRUE(hit.cached);
    EXPECT_EQ(cache.stats().hits, 1u);
    // Bit-exact round trip, including every double: the equality
    // witness is the same serialization --cache-verify compares.
    EXPECT_EQ(ResultCache::comparisonJson(fresh.comparison),
              ResultCache::comparisonJson(hit.comparison));
    EXPECT_EQ(fresh.comparison.baseline.refreshesPerSec,
              hit.comparison.baseline.refreshesPerSec);
    EXPECT_EQ(fresh.comparison.smart.latencySumSec,
              hit.comparison.smart.latencySumSec);
    EXPECT_EQ(fresh.comparison.smart.violations,
              hit.comparison.smart.violations);
}

// ---------------------------------------------------------- robustness

TEST(ResultCacheRobustness, CorruptEntriesAreMissesAndGetOverwritten)
{
    ResultCache cache(freshDir("rc_corrupt"));
    const SweepJob job = makeJob();
    const SweepRunOptions opts = fastOptions();
    const ResultCacheKey key = resultCacheKey(job, opts);
    const SweepJobResult fresh = runSweepJob(job, opts);
    cache.store(key, job, fresh);

    const std::string path = cache.entryPath(key.hex);
    const auto expectCorruptMiss = [&](const std::string &contents) {
        {
            std::ofstream out(path, std::ios::trunc);
            out << contents;
        }
        SweepJobResult r;
        EXPECT_FALSE(cache.lookup(key, r));
        // Recompute-and-overwrite restores the entry.
        cache.store(key, job, fresh);
        SweepJobResult ok;
        EXPECT_TRUE(cache.lookup(key, ok));
    };
    // Truncation, garbage, valid JSON of the wrong schema, an entry
    // whose key does not match its file name, and a schema-valid entry
    // with a missing member: all are misses, none may throw.
    expectCorruptMiss("{\"schema\":\"smartref-result-cache-v1\",");
    expectCorruptMiss("not json at all");
    expectCorruptMiss("{\"schema\":\"smartref-ledger-v1\"}");
    expectCorruptMiss("{\"schema\":\"smartref-result-cache-v1\","
                      "\"key\":\"0000000000000000\","
                      "\"canonical\":\"x\"}");
    {
        // Drop one RunResult member from an otherwise-valid entry.
        std::ifstream in(path);
        std::stringstream text;
        text << in.rdbuf();
        std::string entry = text.str();
        const auto pos = entry.find("\"violations\":");
        ASSERT_NE(pos, std::string::npos);
        entry.erase(pos, entry.find(',', pos) - pos + 1);
        expectCorruptMiss(entry);
    }
    EXPECT_EQ(cache.stats().corrupt, 5u);

    // An absent entry is a plain miss, not a corrupt one.
    ASSERT_TRUE(fs::remove(path));
    SweepJobResult r;
    EXPECT_FALSE(cache.lookup(key, r));
    EXPECT_EQ(cache.stats().corrupt, 5u);
}

TEST(ResultCacheRobustness, ConcurrentStoresOfTheSameKeyAreSafe)
{
    ResultCache cache(freshDir("rc_concurrent"));
    const SweepJob job = makeJob();
    const SweepRunOptions opts = fastOptions();
    const ResultCacheKey key = resultCacheKey(job, opts);
    const SweepJobResult fresh = runSweepJob(job, opts);

    std::vector<std::thread> writers;
    for (int t = 0; t < 8; ++t)
        writers.emplace_back(
            [&] { cache.store(key, job, fresh); });
    for (auto &w : writers)
        w.join();

    SweepJobResult hit;
    ASSERT_TRUE(cache.lookup(key, hit));
    EXPECT_EQ(ResultCache::comparisonJson(fresh.comparison),
              ResultCache::comparisonJson(hit.comparison));
    // No temp droppings left behind.
    std::size_t files = 0;
    for (const auto &shard :
         fs::recursive_directory_iterator(cache.dir()))
        if (shard.is_regular_file())
            ++files;
    EXPECT_EQ(files, 1u);
}

// ------------------------------------------------------------- eviction

TEST(ResultCacheEviction, PrunesLeastRecentlyUsedFirst)
{
    ResultCache cache(freshDir("rc_evict"));
    const SweepRunOptions opts = fastOptions();
    const SweepJobResult result = runSweepJob(makeJob(), opts);

    std::vector<ResultCacheKey> keys;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SweepJob job = makeJob();
        job.seed = seed;
        keys.push_back(resultCacheKey(job, opts));
        cache.store(keys.back(), job, result);
        // Distinct mtimes on coarse-granularity filesystems.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // Touch the oldest entry: a hit bumps its mtime, so eviction must
    // now prefer the second-oldest instead.
    SweepJobResult r;
    ASSERT_TRUE(cache.lookup(keys[0], r));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    const std::uintmax_t entryBytes =
        fs::file_size(cache.entryPath(keys[0].hex));
    // Room for two entries: the two LRU ones (keys[1], keys[2]) go.
    EXPECT_EQ(cache.pruneToBytes(2 * entryBytes + 1), 2u);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_TRUE(fs::exists(cache.entryPath(keys[0].hex)));
    EXPECT_FALSE(fs::exists(cache.entryPath(keys[1].hex)));
    EXPECT_FALSE(fs::exists(cache.entryPath(keys[2].hex)));
    EXPECT_TRUE(fs::exists(cache.entryPath(keys[3].hex)));
}

// ------------------------------------------------------- prefix lookup

TEST(ResultCachePrefix, ResolvesUniqueAndAmbiguousPrefixes)
{
    // matchPrefix scans entry file names, so planting files with
    // chosen names exercises unique/ambiguous/none deterministically
    // (real keys depend on the build fingerprint).
    ResultCache cache(freshDir("rc_prefix"));
    const auto plant = [&](const std::string &hex) {
        const std::string path = cache.entryPath(hex);
        fs::create_directories(fs::path(path).parent_path());
        std::ofstream(path) << "{}";
    };
    plant("ab00000000000000");
    plant("ab00000000000001");
    plant("cd00000000000000");

    EXPECT_EQ(cache.matchPrefix("ab").size(), 2u);
    EXPECT_EQ(cache.matchPrefix("a").size(), 2u);
    const auto unique = cache.matchPrefix("ab00000000000001");
    ASSERT_EQ(unique.size(), 1u);
    EXPECT_EQ(unique[0], "ab00000000000001");
    const auto other = cache.matchPrefix("cd");
    ASSERT_EQ(other.size(), 1u);
    EXPECT_EQ(other[0], "cd00000000000000");
    // Ambiguous matches come back sorted for stable error messages.
    const auto both = cache.matchPrefix("ab0000000000000");
    ASSERT_EQ(both.size(), 2u);
    EXPECT_LT(both[0], both[1]);
    // No match: unknown prefix, non-hex garbage, over-long prefix.
    EXPECT_TRUE(cache.matchPrefix("ef").empty());
    EXPECT_TRUE(cache.matchPrefix("zz").empty());
    EXPECT_TRUE(cache.matchPrefix("").empty());
    EXPECT_TRUE(cache.matchPrefix("0123456789abcdef0").empty());
}

// ------------------------------------------------- runSweep integration

TEST(CachedSweep, WarmAggregatesAreByteIdenticalAndAllHits)
{
    const SweepGrid grid = tinyGrid();
    SweepRunOptions opts = fastOptions();
    const std::string plain = aggregate(grid, opts);

    ResultCache cache(freshDir("rc_sweep"));
    opts.cache = &cache;
    const std::string cold = aggregate(grid, opts);
    EXPECT_EQ(plain, cold) << "attaching a cache changed the bytes";
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().stores, 2u);

    const std::string warm = aggregate(grid, opts);
    EXPECT_EQ(cold, warm);
    EXPECT_EQ(cache.stats().hits, 2u);

    // Parallel warm run: hits stitched in grid order regardless of -j.
    opts.jobs = 4;
    EXPECT_EQ(cold, aggregate(grid, opts));
}

TEST(CachedSweep, IncrementalSupersetSimulatesOnlyTheDelta)
{
    ResultCache cache(freshDir("rc_incremental"));
    SweepRunOptions opts = fastOptions();
    opts.cache = &cache;
    runSweep(tinyGrid(), opts);
    ASSERT_EQ(cache.stats().stores, 2u);

    // Superset grid under a different name: the two shared points are
    // hits, only the two new benchmarks simulate.
    SweepGrid superset = tinyGrid();
    superset.name = "superset";
    superset.benchmarks = {"mummer", "gcc", "radix", "fasta"};
    const auto results = runSweep(superset, opts);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().stores, 4u);
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results) {
        const bool shared = r.job.point.benchmark == "mummer" ||
                            r.job.point.benchmark == "gcc";
        EXPECT_EQ(r.cached, shared) << r.job.point.benchmark;
    }
}

TEST(CachedSweep, VerifyModePassesOnHonestEntriesAndCountsThem)
{
    ResultCache cache(freshDir("rc_verify"));
    SweepRunOptions opts = fastOptions();
    opts.cache = &cache;
    const std::string cold = aggregate(tinyGrid(), opts);

    opts.cacheVerify = true;
    const std::string verified = aggregate(tinyGrid(), opts);
    EXPECT_EQ(cold, verified);
    EXPECT_EQ(cache.stats().verified, 2u);
}

TEST(CachedSweep, VerifyModeIsFatalOnTamperedEntries)
{
    ResultCache cache(freshDir("rc_tamper"));
    SweepRunOptions opts = fastOptions();
    opts.cache = &cache;
    const SweepGrid grid = tinyGrid();
    runSweep(grid, opts);

    // Tamper with one stored metric; the entry stays schema-valid.
    const auto jobs = expandGrid(grid, opts.baseSeed, opts.seedMode);
    const std::string path =
        cache.entryPath(resultCacheKey(jobs[0], opts).hex);
    std::string entry;
    {
        std::ifstream in(path);
        std::stringstream text;
        text << in.rdbuf();
        entry = text.str();
    }
    const auto pos = entry.find("\"refreshesPerSec\":");
    ASSERT_NE(pos, std::string::npos);
    entry.replace(pos, 18, "\"refreshesPerSec\":9");
    {
        std::ofstream out(path, std::ios::trunc);
        out << entry;
    }

    opts.cacheVerify = true;
    EXPECT_THROW(runSweep(grid, opts), std::runtime_error);
}

TEST(CachedSweep, HeatmapCollectionBypassesProbingButStillStores)
{
    ResultCache cache(freshDir("rc_heatmap"));
    SweepRunOptions opts = fastOptions();
    opts.cache = &cache;
    const SweepGrid grid = tinyGrid();
    runSweep(grid, opts);
    ASSERT_EQ(cache.stats().stores, 2u);

    // Entries carry no heatmaps, so a heatmap-collecting run must
    // simulate (no probes, no hits) — but it refreshes the store.
    opts.collectHeatmaps = true;
    const auto results = runSweep(grid, opts);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().stores, 4u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.cached);
        EXPECT_NE(r.heatmap, nullptr);
    }
}

TEST(ResultCacheDir, DefaultDirHonoursEnvOverride)
{
    // SMARTREF_CACHE_DIR wins over the XDG/HOME chain.
    ::setenv("SMARTREF_CACHE_DIR", "/tmp/smartref-env-cache", 1);
    EXPECT_EQ(ResultCache::defaultDir(), "/tmp/smartref-env-cache");
    ::unsetenv("SMARTREF_CACHE_DIR");
    EXPECT_NE(ResultCache::defaultDir(), "/tmp/smartref-env-cache");
}

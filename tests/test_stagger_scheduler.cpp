#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "core/stagger_scheduler.hh"
#include "sim/types.hh"

using namespace smartref;

namespace {
constexpr Tick kRetention = 64 * kMillisecond;
}

TEST(Stagger, PeriodAndStepInterval)
{
    CounterArray counters(128, 3);
    StaggerScheduler s(counters, 8, kRetention);
    EXPECT_EQ(s.counterAccessPeriod(), kRetention / 8); // 2^3
    EXPECT_EQ(s.countersPerSegment(), 16u);
    EXPECT_EQ(s.stepInterval(), s.counterAccessPeriod() / 16);
}

TEST(Stagger, RejectsUnevenSegments)
{
    CounterArray counters(100, 3);
    EXPECT_THROW(StaggerScheduler(counters, 8, kRetention),
                 std::logic_error);
}

TEST(Stagger, EachCounterTouchedExactlyOncePerPeriod)
{
    CounterArray counters(64, 2);
    StaggerScheduler s(counters, 4, kRetention);
    s.initialiseStaggered();

    std::map<std::uint64_t, int> touches;
    // Count touches over one full period by instrumenting values: every
    // touch either decrements or resets, i.e. changes SRAM traffic.
    const std::uint64_t stepsPerPeriod = s.countersPerSegment();
    std::uint64_t before = counters.sramReads();
    for (std::uint64_t k = 0; k < stepsPerPeriod; ++k)
        s.step([](std::uint64_t) {});
    // 4 segments x 16 steps = 64 touches: each counter exactly once.
    EXPECT_EQ(counters.sramReads() - before, 64u);
    EXPECT_EQ(s.position(), 0u); // wrapped around
}

TEST(Stagger, AtMostSegmentsRefreshesPerStep)
{
    CounterArray counters(64, 2);
    StaggerScheduler s(counters, 4, kRetention);
    // All counters zero -> every touch expires.
    int perStep = 0;
    s.step([&](std::uint64_t) { ++perStep; });
    EXPECT_EQ(perStep, 4); // exactly the segment count, never more
}

TEST(Stagger, StaggeredInitSpreadsValues)
{
    CounterArray counters(64, 2);
    StaggerScheduler s(counters, 4, kRetention);
    s.initialiseStaggered();
    // Within a segment the pattern cycles max, max-1, ..., 0, max, ...
    std::vector<int> histogram(4, 0);
    for (std::uint64_t i = 0; i < counters.size(); ++i)
        ++histogram[counters.peek(i)];
    for (int h : histogram)
        EXPECT_EQ(h, 16); // uniform spread over the 4 values
}

TEST(Stagger, SteadyStateRefreshRateMatchesBaseline)
{
    // With no demand resets, Smart Refresh degenerates to a distributed
    // refresh: every counter expires exactly once per retention
    // interval after the initial transient.
    CounterArray counters(128, 3);
    StaggerScheduler s(counters, 8, kRetention);
    s.initialiseStaggered();

    const std::uint64_t stepsPerPeriod = s.countersPerSegment();
    const std::uint64_t stepsPerInterval = stepsPerPeriod * 8; // 2^bits
    // Run one full interval to absorb the init transient.
    std::uint64_t warmupRefreshes = 0;
    for (std::uint64_t k = 0; k < stepsPerInterval; ++k)
        s.step([&](std::uint64_t) { ++warmupRefreshes; });
    // Then measure an interval.
    std::uint64_t refreshes = 0;
    for (std::uint64_t k = 0; k < stepsPerInterval; ++k)
        s.step([&](std::uint64_t) { ++refreshes; });
    EXPECT_EQ(refreshes, counters.size());
}

TEST(Stagger, ExpiredCounterIdentitiesAreCorrect)
{
    CounterArray counters(16, 2);
    StaggerScheduler s(counters, 4, kRetention);
    // Leave all counters at zero; the first step touches position 0 of
    // each segment: indices 0, 4, 8, 12.
    std::vector<std::uint64_t> expired;
    s.step([&](std::uint64_t idx) { expired.push_back(idx); });
    EXPECT_EQ(expired, (std::vector<std::uint64_t>{0, 4, 8, 12}));
    expired.clear();
    s.step([&](std::uint64_t idx) { expired.push_back(idx); });
    EXPECT_EQ(expired, (std::vector<std::uint64_t>{1, 5, 9, 13}));
}

TEST(Stagger, DemandResetDefersExpiry)
{
    CounterArray counters(16, 2);
    StaggerScheduler s(counters, 4, kRetention);
    counters.reset(0); // demand access: value 3
    int expiredCount = 0;
    // Walk one full period: counter 0 decrements to 2, all others expire.
    for (std::uint64_t k = 0; k < s.countersPerSegment(); ++k)
        s.step([&](std::uint64_t) { ++expiredCount; });
    EXPECT_EQ(expiredCount, 15);
    EXPECT_EQ(counters.peek(0), 2);
}

TEST(Stagger, StepsExecutedCounts)
{
    CounterArray counters(16, 2);
    StaggerScheduler s(counters, 4, kRetention);
    for (int i = 0; i < 7; ++i)
        s.step([](std::uint64_t) {});
    EXPECT_EQ(s.stepsExecuted(), 7u);
}

TEST(Stagger, SegmentsMapToBankPartitions)
{
    // For the paper's 2 GB module (131072 counters, 8 segments) each
    // segment covers exactly one (rank, bank) pair's worth of rows, so
    // simultaneous refreshes land in independent banks.
    CounterArray counters(131072, 3);
    StaggerScheduler s(counters, 8, kRetention);
    EXPECT_EQ(s.countersPerSegment(), 16384u); // rows per bank
}

/**
 * @file
 * Refresh-access parallelism tests: mode parsing, subarray busy-window
 * bookkeeping in the bank/device models, the REFab rank stall, the DARP
 * idle predictor, sweep-axis plumbing (pointKey/seed/expansion), the
 * -j1 vs -jN byte-identity of parallelism sweeps, and the headline
 * ordering property — DARP/SARP block demand strictly less than
 * all-bank refresh at equal refresh counts.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ctrl/darp_predictor.hh"
#include "dram/dram_module.hh"
#include "dram/refresh_parallelism.hh"
#include "harness/sweep.hh"
#include "test_config.hh"

using namespace smartref;

TEST(ParallelismNames, RoundTrip)
{
    for (RefreshParallelism p :
         {RefreshParallelism::None, RefreshParallelism::PerBank,
          RefreshParallelism::Darp, RefreshParallelism::Sarp,
          RefreshParallelism::DSarp}) {
        EXPECT_EQ(parallelismFromString(toString(p)), p);
    }
    EXPECT_EQ(parallelismFromString("refpb"), RefreshParallelism::PerBank);
    EXPECT_EQ(parallelismFromString("all"), RefreshParallelism::DSarp);
    EXPECT_THROW(parallelismFromString("nosuch"), std::runtime_error);
}

TEST(ParallelismNames, LayerPredicates)
{
    EXPECT_FALSE(parallelismUsesDarp(RefreshParallelism::PerBank));
    EXPECT_TRUE(parallelismUsesDarp(RefreshParallelism::Darp));
    EXPECT_TRUE(parallelismUsesDarp(RefreshParallelism::DSarp));
    EXPECT_FALSE(parallelismUsesSubarrays(RefreshParallelism::Darp));
    EXPECT_TRUE(parallelismUsesSubarrays(RefreshParallelism::Sarp));
    EXPECT_TRUE(parallelismUsesSubarrays(RefreshParallelism::DSarp));
}

TEST(SubarrayGeometry, MapsRowsAndValidates)
{
    DramConfig c = tcfg::tinyConfig(); // 64 rows, 8 subarrays
    EXPECT_EQ(c.org.rowsPerSubarray(), 8u);
    EXPECT_EQ(c.org.subarrayOf(0), 0u);
    EXPECT_EQ(c.org.subarrayOf(7), 0u);
    EXPECT_EQ(c.org.subarrayOf(8), 1u);
    EXPECT_EQ(c.org.subarrayOf(63), 7u);
    c.org.subarraysPerBank = 7; // 64 % 7 != 0
    EXPECT_THROW(c.validate(), std::runtime_error);
    c.org.subarraysPerBank = 0;
    EXPECT_THROW(c.validate(), std::runtime_error);
}

TEST(SubarrayGeometry, RefreshClosesPageOnlyInSameSubarray)
{
    DramConfig c = tcfg::tinyConfig();
    // Outside subarray modes any refresh closes the open page.
    c.parallelism = RefreshParallelism::PerBank;
    EXPECT_TRUE(c.refreshClosesPage(3, 60));
    c.parallelism = RefreshParallelism::Sarp;
    EXPECT_TRUE(c.refreshClosesPage(3, 5));   // both subarray 0
    EXPECT_FALSE(c.refreshClosesPage(3, 60)); // subarray 0 vs 7
    c.parallelism = RefreshParallelism::DSarp;
    EXPECT_FALSE(c.refreshClosesPage(3, 60));
}

class SubarrayBankTest : public ::testing::Test
{
  protected:
    SubarrayBankTest() { bank.configureSubarrays(8); }

    DramTiming t = tcfg::tinyConfig().timing;
    Bank bank;
};

TEST_F(SubarrayBankTest, RefreshBusiesOnlyTargetSubarray)
{
    const Tick done = bank.refreshSubarray(2, 1000, t, false);
    EXPECT_EQ(done, 1000 + t.tRFCrow);
    EXPECT_EQ(bank.subarrayBusyUntil(2), done);
    EXPECT_EQ(bank.subarrayBusyUntil(0), 0u);
    EXPECT_EQ(bank.subarrayBusyUntil(3), 0u);
    EXPECT_EQ(bank.maxSubarrayBusyUntil(), done);
    EXPECT_EQ(bank.lastRefreshStart(), 1000u);
    // Bank-level windows are untouched: demand may proceed elsewhere.
    EXPECT_EQ(bank.busyUntil(), 0u);
    EXPECT_EQ(bank.actAllowedAt(), 0u);
}

TEST_F(SubarrayBankTest, OpenPageSurvivesOtherSubarrayRefresh)
{
    bank.activate(3, 0, t); // row 3 lives in subarray 0
    bank.refreshSubarray(5, t.tRAS, t, /*closesOwnPage=*/false);
    EXPECT_TRUE(bank.isOpen());
    EXPECT_EQ(bank.openRow(), 3u);
}

TEST_F(SubarrayBankTest, SameSubarrayRefreshClosesPageAndAddsPrecharge)
{
    bank.activate(3, 0, t);
    const Tick start = t.tRAS;
    const Tick done =
        bank.refreshSubarray(0, start, t, /*closesOwnPage=*/true);
    EXPECT_EQ(done, start + t.tRP + t.tRFCrow);
    EXPECT_FALSE(bank.isOpen());
    EXPECT_EQ(bank.subarrayBusyUntil(0), done);
}

TEST_F(SubarrayBankTest, BusyWindowsMergeByMax)
{
    bank.refreshSubarray(1, 1000, t, false);
    const Tick first = bank.subarrayBusyUntil(1);
    bank.refreshSubarray(1, 500, t, false); // earlier start, shorter end
    EXPECT_EQ(bank.subarrayBusyUntil(1), first);
}

TEST(RefabStall, StallAllBanksMergesByMax)
{
    Bank bank;
    EXPECT_EQ(bank.refreshStall(), 0u);
    bank.stallForRefresh(5000);
    bank.stallForRefresh(3000); // earlier: must not shrink the window
    EXPECT_EQ(bank.refreshStall(), 5000u);
}

class ParallelismModuleTest : public ::testing::Test
{
  protected:
    DramModule &
    make(RefreshParallelism p)
    {
        DramConfig c = tcfg::tinyConfig();
        c.parallelism = p;
        dram = std::make_unique<DramModule>(c, eq);
        return *dram;
    }

    EventQueue eq;
    std::unique_ptr<DramModule> dram;
};

TEST_F(ParallelismModuleTest, RefabRefreshStallsSiblingBanks)
{
    DramModule &d = make(RefreshParallelism::None);
    const Tick done = d.issue({DramCommandType::RefreshRasOnly, 0, 0, 0, 0});
    // The sibling bank is stalled until the refresh completes...
    EXPECT_EQ(d.refreshBlockedUntil(0, 1, 0), done);
    EXPECT_GE(d.earliestIssue({DramCommandType::Activate, 0, 1, 9, 0}),
              done);
}

TEST_F(ParallelismModuleTest, PerBankRefreshLeavesSiblingBanksFree)
{
    DramModule &d = make(RefreshParallelism::PerBank);
    const Tick done = d.issue({DramCommandType::RefreshRasOnly, 0, 0, 0, 0});
    EXPECT_EQ(d.refreshBlockedUntil(0, 0, 0), done);
    EXPECT_EQ(d.refreshBlockedUntil(0, 1, 0), 0u);
    EXPECT_EQ(d.earliestIssue({DramCommandType::Activate, 0, 1, 9, 0}),
              eq.now());
}

TEST_F(ParallelismModuleTest, SarpRefreshBlocksOnlyItsSubarray)
{
    DramModule &d = make(RefreshParallelism::Sarp);
    // Refresh row 0 (subarray 0) of bank 0.
    const Tick done = d.issue({DramCommandType::RefreshRasOnly, 0, 0, 0, 0});
    // A row in the refreshed subarray is blocked until completion; a
    // row in another subarray of the same bank is not.
    EXPECT_EQ(d.refreshBlockedUntil(0, 0, 3), done);
    EXPECT_EQ(d.subarrayBlockedUntil(0, 0, 3), done);
    EXPECT_EQ(d.subarrayBlockedUntil(0, 0, 60), 0u);
    EXPECT_EQ(d.refreshBlockedUntil(0, 0, 60), 0u);
}

TEST_F(ParallelismModuleTest, SarpOpenPageSurvivesOtherSubarrayRefresh)
{
    DramModule &d = make(RefreshParallelism::Sarp);
    eq.runUntil(d.earliestIssue({DramCommandType::Activate, 0, 0, 60, 0}));
    d.issue({DramCommandType::Activate, 0, 0, 60, 0}); // subarray 7
    d.issue({DramCommandType::RefreshRasOnly, 0, 0, 0, 0}); // subarray 0
    EXPECT_TRUE(d.isBankOpen(0, 0));
    EXPECT_EQ(d.openRow(0, 0), 60u);
}

TEST(DarpPredictor, NeverSeenBankIsIdle)
{
    DarpIdlePredictor p;
    EXPECT_FALSE(p.hasSeenDemand());
    EXPECT_TRUE(p.expectIdleFor(12345, 1000000));
}

TEST(DarpPredictor, LearnsRegularCadence)
{
    DarpIdlePredictor p;
    // Regular arrivals every 1000 ticks converge the EWMA onto the gap.
    Tick now = 0;
    for (int i = 0; i < 64; ++i) {
        p.recordDemand(now);
        now += 1000;
    }
    EXPECT_NEAR(static_cast<double>(p.averageGap()), 1000.0, 4.0);
    const Tick last = p.lastArrival();
    // Shortly after an arrival the bank is expected busy again soon:
    // a long refresh does not fit in the predicted idle window...
    EXPECT_FALSE(p.expectIdleFor(last, 5000));
    // ...but a short operation that fits inside the gap does.
    EXPECT_TRUE(p.expectIdleFor(last, 500));
}

TEST(DarpPredictor, GapNeverGoesNegative)
{
    DarpIdlePredictor p;
    p.recordDemand(1000);
    p.recordDemand(1000); // zero gap
    p.recordDemand(1000);
    EXPECT_GE(p.averageGap(), 0);
    EXPECT_TRUE(p.expectIdleFor(1000, 0));
}

TEST(ParallelismSweepAxis, PointKeyOmitsDefaultMode)
{
    SweepPoint p;
    p.config = "2gb";
    p.benchmark = "mummer";
    p.policy = "smart";
    p.counterBits = 3;
    p.retentionMs = 0;
    // The default must keep the pre-parallelism key (and therefore the
    // published seeds) byte-identical.
    EXPECT_EQ(pointKey(p),
              "config=2gb;bench=mummer;policy=smart;bits=3;retentionMs=0");
    p.parallelism = "darp";
    EXPECT_EQ(pointKey(p),
              "config=2gb;bench=mummer;policy=smart;bits=3;retentionMs=0"
              ";par=darp");
    SweepPoint q = p;
    q.parallelism = "sarp";
    EXPECT_NE(deriveJobSeed(42, p), deriveJobSeed(42, q));
}

TEST(ParallelismSweepAxis, ExpansionNestsBetweenPolicyAndBenchmark)
{
    SweepGrid g;
    g.configs = {"2gb"};
    g.benchmarks = {"mummer", "gcc"};
    g.policies = {"cbr", "smart"};
    g.counterBits = {3};
    g.retentionMs = {0};
    g.parallelism = {"refpb", "darp"};
    const auto jobs = expandGrid(g, 42);
    ASSERT_EQ(jobs.size(), 8u);
    EXPECT_EQ(jobs[0].point.policy, "cbr");
    EXPECT_EQ(jobs[0].point.parallelism, "refpb");
    EXPECT_EQ(jobs[0].point.benchmark, "mummer");
    EXPECT_EQ(jobs[1].point.benchmark, "gcc");      // benchmark innermost
    EXPECT_EQ(jobs[2].point.parallelism, "darp");   // parallelism next
    EXPECT_EQ(jobs[4].point.policy, "smart");       // then policy
}

TEST(ParallelismSweepAxis, UnknownModeIsFatal)
{
    SweepGrid g;
    g.parallelism = {"nosuch"};
    EXPECT_THROW(expandGrid(g, 42), std::runtime_error);
}

TEST(ParallelismSweepAxis, ParsesJsonMember)
{
    const SweepGrid g = parseSweepGrid(
        R"({"name":"p","parallelism":["none","darp"]})");
    EXPECT_EQ(g.parallelism,
              (std::vector<std::string>{"none", "darp"}));
    const SweepGrid d = parseSweepGrid(R"({"name":"p"})");
    EXPECT_EQ(d.parallelism, (std::vector<std::string>{"refpb"}));
}

namespace {

/** Tiny windows: determinism, not statistics, is under test. */
SweepRunOptions
fastOptions(unsigned jobs)
{
    SweepRunOptions opts;
    opts.jobs = jobs;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 4 * kMillisecond;
    return opts;
}

SweepGrid
parallelismGrid()
{
    SweepGrid g;
    g.name = "par";
    g.configs = {"2gb"};
    g.benchmarks = {"mummer"};
    g.policies = {"cbr"};
    g.counterBits = {3};
    g.retentionMs = {0};
    g.parallelism = {"none", "refpb", "darp", "sarp", "all"};
    return g;
}

std::string
aggregateJson(const SweepGrid &grid, const SweepRunOptions &opts)
{
    std::ostringstream oss;
    writeSweepJson(grid, opts, runSweep(grid, opts), oss);
    return oss.str();
}

} // namespace

TEST(ParallelismDeterminism, AggregatesAreByteIdenticalAcrossJobs)
{
    const SweepGrid grid = parallelismGrid();
    EXPECT_EQ(aggregateJson(grid, fastOptions(1)),
              aggregateJson(grid, fastOptions(8)));
}

TEST(ParallelismOrdering, DarpAndSarpBlockLessThanAllBank)
{
    // Policy "cbr" compares the refresh cadence against itself, so all
    // modes issue the same refresh count and the blocked-ticks ordering
    // is attributable to the parallelism mode alone.
    const SweepGrid grid = parallelismGrid();
    const auto results = runSweep(grid, fastOptions(2));
    ASSERT_EQ(results.size(), 5u);
    const RunResult &none = results[0].comparison.smart;
    const RunResult &refpb = results[1].comparison.smart;
    const RunResult &darp = results[2].comparison.smart;
    const RunResult &sarp = results[3].comparison.smart;
    const RunResult &dsarp = results[4].comparison.smart;

    // Equal refresh counts across modes (the cadence is fixed by CBR).
    EXPECT_NEAR(none.refreshesPerSec, darp.refreshesPerSec,
                none.refreshesPerSec * 0.01);
    EXPECT_NEAR(none.refreshesPerSec, sarp.refreshesPerSec,
                none.refreshesPerSec * 0.01);

    // All-bank refresh blocks demand the most; every parallelism layer
    // strictly improves on it.
    EXPECT_GT(none.demandBlockedByRefreshTicks,
              refpb.demandBlockedByRefreshTicks);
    EXPECT_GT(none.demandBlockedByRefreshTicks,
              darp.demandBlockedByRefreshTicks);
    EXPECT_GT(none.demandBlockedByRefreshTicks,
              sarp.demandBlockedByRefreshTicks);
    EXPECT_GT(none.demandBlockedByRefreshTicks,
              dsarp.demandBlockedByRefreshTicks);

    // The DARP layers actually exercised their machinery.
    EXPECT_GT(darp.refreshStallsAvoided, 0u);
    EXPECT_GT(dsarp.refreshStallsAvoided, 0u);
    EXPECT_EQ(none.refreshStallsAvoided, 0u);
}

TEST(PerBankPolicy, MatchesCbrRefreshRateOnTinyWindows)
{
    // The per-bank walker covers every row once per retention interval,
    // so its steady-state rate equals the CBR baseline's.
    SweepJob job;
    job.point.config = "2gb";
    job.point.benchmark = "mummer";
    job.point.policy = "per-bank";
    job.seed = 42;
    const SweepJobResult r = runSweepJob(job, fastOptions(1));
    EXPECT_NEAR(r.comparison.smart.refreshesPerSec,
                r.comparison.baseline.refreshesPerSec,
                r.comparison.baseline.refreshesPerSec * 0.02);
    EXPECT_EQ(r.comparison.smart.violations, 0u);
}

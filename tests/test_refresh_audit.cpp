/**
 * @file
 * RefreshAudit tests: outcome naming, slab-buffered append order,
 * binary/NDJSON drains, the null-target record macro, and the
 * end-to-end wiring — each policy records the outcomes its decision
 * path actually takes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "ctrl/refresh_audit.hh"
#include "harness/experiment.hh"
#include "sim/mini_json.hh"

using namespace smartref;

namespace {

RefreshAudit::Shape
smallShape()
{
    return {2, 4, 64};
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

} // namespace

TEST(RefreshAudit, OutcomeNamesRoundTrip)
{
    const auto names = auditOutcomeNames();
    ASSERT_EQ(names.size(), kAuditOutcomeCount);
    for (std::size_t i = 0; i < kAuditOutcomeCount; ++i) {
        const auto outcome = static_cast<AuditOutcome>(i);
        EXPECT_EQ(names[i], toString(outcome));
        AuditOutcome parsed;
        ASSERT_TRUE(parseAuditOutcome(names[i], parsed));
        EXPECT_EQ(parsed, outcome);
    }
    AuditOutcome ignored;
    EXPECT_FALSE(parseAuditOutcome("bogus", ignored));
    EXPECT_STREQ(toString(AuditOutcome::SkippedCounterReset),
                 "skipped-counter-reset");
    EXPECT_STREQ(toString(AuditSource::SmartWalk), "smart-walk");
}

TEST(RefreshAudit, RecordMaintainsCountsAndAppendOrder)
{
    RefreshAudit audit(smallShape());
    EXPECT_EQ(audit.total(), 0u);
    audit.record(10, 0, 1, 2, AuditOutcome::Issued,
                 AuditSource::Controller);
    audit.record(20, 1, 3, 63, AuditOutcome::Deferred,
                 AuditSource::SmartSchedule);
    audit.record(30, 0, 0, 0, AuditOutcome::Deferred,
                 AuditSource::SmartSchedule);
    EXPECT_EQ(audit.total(), 3u);
    EXPECT_EQ(audit.count(AuditOutcome::Issued), 1u);
    EXPECT_EQ(audit.count(AuditOutcome::Deferred), 2u);
    EXPECT_EQ(audit.count(AuditOutcome::ForcedDeadline), 0u);

    const auto records = audit.collect();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].tick, 10u);
    EXPECT_EQ(records[0].row, 2u);
    EXPECT_EQ(records[1].rank, 1);
    EXPECT_EQ(records[1].bank, 3);
    EXPECT_EQ(records[2].tick, 30u);
}

TEST(RefreshAudit, SlabBoundariesPreserveEveryRecord)
{
    RefreshAudit audit(smallShape());
    const std::uint64_t n = 2 * RefreshAudit::kSlabRecords + 3;
    for (std::uint64_t i = 0; i < n; ++i) {
        audit.record(i, 0, 0, static_cast<std::uint32_t>(i % 64),
                     AuditOutcome::SkippedCounterReset,
                     AuditSource::SmartWalk);
    }
    EXPECT_EQ(audit.total(), n);
    std::uint64_t seen = 0;
    audit.forEach([&seen](const AuditRecord &r) {
        EXPECT_EQ(r.tick, seen);
        ++seen;
    });
    EXPECT_EQ(seen, n);
}

TEST(RefreshAudit, BinaryRoundTripPreservesHeaderAndRecords)
{
    RefreshAudit audit(smallShape());
    audit.record(42, 1, 2, 33, AuditOutcome::ForcedDeadline,
                 AuditSource::Controller);
    audit.record(43, 0, 3, 7, AuditOutcome::SkippedRecentAccess,
                 AuditSource::RetentionAware);
    const std::string path = tempPath("audit_roundtrip.bin");
    audit.writeBinary(path);

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in);
    AuditFileHeader header{};
    in.read(reinterpret_cast<char *>(&header), sizeof(header));
    EXPECT_EQ(std::memcmp(header.magic, kAuditMagic, sizeof(kAuditMagic)),
              0);
    EXPECT_EQ(header.version, kAuditVersion);
    EXPECT_EQ(header.recordBytes, sizeof(AuditRecord));
    EXPECT_EQ(header.ranks, 2u);
    EXPECT_EQ(header.banks, 4u);
    EXPECT_EQ(header.rows, 64u);

    std::vector<AuditRecord> records(2);
    in.read(reinterpret_cast<char *>(records.data()),
            static_cast<std::streamsize>(2 * sizeof(AuditRecord)));
    ASSERT_TRUE(in);
    EXPECT_EQ(records[0].tick, 42u);
    EXPECT_EQ(records[0].outcome,
              static_cast<std::uint8_t>(AuditOutcome::ForcedDeadline));
    EXPECT_EQ(records[1].row, 7u);
    EXPECT_EQ(records[1].source,
              static_cast<std::uint8_t>(AuditSource::RetentionAware));
}

TEST(RefreshAudit, NdjsonLinesParseIndividually)
{
    RefreshAudit audit(smallShape());
    audit.record(100, 0, 1, 5, AuditOutcome::Deferred,
                 AuditSource::SmartSchedule);
    audit.record(200, 1, 0, 6, AuditOutcome::Issued,
                 AuditSource::Controller);
    const std::string path = tempPath("audit_roundtrip.ndjson");
    audit.writeNdjson(path);

    std::ifstream in(path);
    ASSERT_TRUE(in);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        const minijson::Value v = minijson::parse(line);
        EXPECT_TRUE(v.isObject()) << line;
        EXPECT_TRUE(v.has("t")) << line;
        EXPECT_TRUE(v.has("outcome")) << line;
        ++lines;
    }
    EXPECT_EQ(lines, 2u);
}

TEST(RefreshAudit, RecordMacroIgnoresNullTarget)
{
    RefreshAudit *none = nullptr;
    SMARTREF_AUDIT_RECORD(none, Tick(0), 0u, 0u, 0u,
                          AuditOutcome::Issued, AuditSource::Controller);
    SUCCEED();
}

#ifndef SMARTREF_AUDIT_DISABLED

namespace {

/** Run one short experiment with an audit trail attached. */
RefreshAudit
auditedRun(const char *policy)
{
    const DramConfig dram = dramConfigByName("2gb");
    RefreshAudit audit(RefreshAudit::Shape{dram.org.ranks, dram.org.banks,
                                           dram.org.rows});
    ExperimentOptions opts;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 4 * kMillisecond;
    opts.audit = &audit;
    runConventional(findProfile("mummer"), dram, policyFromString(policy),
                    opts);
    return audit;
}

} // namespace

TEST(RefreshAuditWiring, CbrRecordsOnlyForcedDeadlines)
{
    const RefreshAudit audit = auditedRun("cbr");
    EXPECT_GT(audit.count(AuditOutcome::ForcedDeadline), 0u);
    EXPECT_EQ(audit.count(AuditOutcome::Issued), 0u);
    EXPECT_EQ(audit.count(AuditOutcome::SkippedCounterReset), 0u);
    EXPECT_EQ(audit.count(AuditOutcome::SkippedRecentAccess), 0u);
}

TEST(RefreshAuditWiring, SmartRecordsWalkSkipsDeferralsAndIssues)
{
    const RefreshAudit audit = auditedRun("smart");
    EXPECT_GT(audit.count(AuditOutcome::SkippedCounterReset), 0u);
    EXPECT_GT(audit.count(AuditOutcome::Deferred), 0u);
    EXPECT_GT(audit.count(AuditOutcome::Issued), 0u);
    EXPECT_EQ(audit.count(AuditOutcome::SkippedRecentAccess), 0u);
}

TEST(RefreshAuditWiring, RetentionAwareRecordsRecentAccessSkips)
{
    // The retention-aware policy needs a class map, which
    // runConventional does not build — assemble the system directly.
    const DramConfig dram = dramConfigByName("2gb");
    RefreshAudit audit(RefreshAudit::Shape{dram.org.ranks, dram.org.banks,
                                           dram.org.rows});
    RetentionClassParams params;
    params.seed = 7;
    SystemConfig cfg;
    cfg.dram = dram;
    cfg.policy = PolicyKind::RetentionAware;
    cfg.retentionClasses = std::make_shared<RetentionClassMap>(
        dram.org.totalRows(), params);
    cfg.audit = &audit;
    System sys(cfg);
    // By the second base-period walk, strong rows refreshed in the
    // first pass are still within their class deadline — skipped.
    sys.run(5 * dram.timing.retention / 2);
    EXPECT_GT(audit.count(AuditOutcome::SkippedRecentAccess), 0u);
    EXPECT_GT(audit.count(AuditOutcome::Issued), 0u);
}

TEST(RefreshAuditWiring, CoordinatesStayInsideTheModuleShape)
{
    const RefreshAudit audit = auditedRun("smart");
    const auto shape = audit.shape();
    ASSERT_GT(audit.total(), 0u);
    Tick last = 0;
    audit.forEach([&](const AuditRecord &r) {
        EXPECT_LT(r.rank, shape.ranks);
        EXPECT_LT(r.bank, shape.banks);
        EXPECT_LT(r.row, shape.rows);
        EXPECT_GE(r.tick, last); // simulated time never goes backwards
        last = r.tick;
    });
}

#endif // SMARTREF_AUDIT_DISABLED

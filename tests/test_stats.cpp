#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/stats.hh"

using namespace smartref;

TEST(Stats, ScalarAccumulates)
{
    StatGroup root("root");
    Scalar s(&root, "count", "a counter");
    s += 5.0;
    ++s;
    s -= 2.0;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s = 10.0;
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, VectorTotalsAndLabels)
{
    StatGroup root("root");
    VectorStat v(&root, "perBank", "per bank", {"b0", "b1", "b2"});
    v[0] = 1.0;
    v[1] += 2.0;
    v[2] = 3.0;
    EXPECT_DOUBLE_EQ(v.total(), 6.0);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v.at(1), 2.0);
    v.reset();
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

TEST(Stats, HistogramMoments)
{
    StatGroup root("root");
    Histogram h(&root, "lat", "latency", 0.0, 100.0, 10);
    for (double x : {10.0, 20.0, 30.0, 40.0})
        h.sample(x);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 25.0);
    EXPECT_DOUBLE_EQ(h.min(), 10.0);
    EXPECT_DOUBLE_EQ(h.max(), 40.0);
    EXPECT_NEAR(h.stddev(), 12.909944, 1e-5);
}

TEST(Stats, HistogramOverUnderflow)
{
    StatGroup root("root");
    Histogram h(&root, "h", "", 0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(5.0);
    h.sample(100.0);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 1u);
    EXPECT_EQ(h.samples(), 3u);
}

TEST(Stats, HistogramWeightedSamples)
{
    StatGroup root("root");
    Histogram h(&root, "h", "", 0.0, 10.0, 5);
    h.sample(4.0, 3);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Stats, HistogramPercentilesExactQuantiles)
{
    StatGroup root("root");
    Histogram h(&root, "h", "", 0.0, 100.0, 10); // width 10, midpoints 5..95
    h.sample(5.0, 50);
    h.sample(45.0, 45);
    h.sample(95.0, 5);
    // rank(0.50) = 50 falls on the last sample of bucket 0 -> midpoint 5.
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 5.0);
    // rank(0.95) = 95 falls on the last sample of bucket 4 -> midpoint 45.
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 45.0);
    // rank(0.99) = 99 reaches into bucket 9 -> midpoint 95.
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 95.0);
}

TEST(Stats, HistogramPercentileTailsUseObservedExtremes)
{
    StatGroup root("root");
    Histogram h(&root, "h", "", 0.0, 10.0, 5);
    h.sample(-5.0);  // underflow; min = -5
    h.sample(5.0);   // bucket 2, midpoint 5
    h.sample(100.0); // overflow; max = 100
    // Underflow mass is reported as the observed minimum, overflow as
    // the observed maximum — not as the bucket range bounds.
    EXPECT_DOUBLE_EQ(h.percentile(0.01), -5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Stats, HistogramPercentileEdgeCases)
{
    StatGroup root("root");
    Histogram empty(&root, "e", "", 0.0, 10.0, 5);
    EXPECT_TRUE(std::isnan(empty.percentile(0.5)));

    Histogram one(&root, "o", "", 0.0, 10.0, 5);
    one.sample(7.0); // bucket 3, midpoint 7
    // Rank clamps to [1, samples]: every p maps onto the lone sample.
    EXPECT_DOUBLE_EQ(one.percentile(0.0001), 7.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(one.percentile(1.0), 7.0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup root("root");
    Scalar a(&root, "a", "");
    Formula f(&root, "double_a", "", [&a] { return a.value() * 2.0; });
    a = 21.0;
    EXPECT_DOUBLE_EQ(f.value(), 42.0);
    a = 1.0;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(Stats, GroupHierarchyNames)
{
    StatGroup root("sys");
    StatGroup child("dram", &root);
    StatGroup grand("bank0", &child);
    EXPECT_EQ(grand.fullStatName(), "sys.dram.bank0");
}

TEST(Stats, DumpContainsQualifiedNames)
{
    StatGroup root("sys");
    StatGroup child("mem", &root);
    Scalar s(&child, "reads", "read count");
    s = 7.0;
    std::ostringstream oss;
    root.dumpStats(oss);
    EXPECT_NE(oss.str().find("sys.mem.reads"), std::string::npos);
    EXPECT_NE(oss.str().find("read count"), std::string::npos);
}

TEST(Stats, ResetRecursesThroughChildren)
{
    StatGroup root("sys");
    StatGroup child("mem", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a = 1.0;
    b = 2.0;
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, DuplicateNameInGroupPanics)
{
    StatGroup root("sys");
    Scalar a(&root, "x", "");
    EXPECT_THROW(Scalar(&root, "x", ""), std::logic_error);
}

TEST(Stats, FindStat)
{
    StatGroup root("sys");
    Scalar a(&root, "hits", "");
    EXPECT_EQ(root.findStat("hits"), &a);
    EXPECT_EQ(root.findStat("misses"), nullptr);
}

TEST(Stats, ChildUnregistersOnDestruction)
{
    StatGroup root("sys");
    {
        StatGroup child("temp", &root);
        Scalar s(&child, "v", "");
        s = 1.0;
    }
    std::ostringstream oss;
    root.dumpStats(oss); // must not touch the destroyed child
    EXPECT_EQ(oss.str().find("temp"), std::string::npos);
}

TEST(Stats, ResolveStatDottedPath)
{
    StatGroup root("sys");
    StatGroup child("mem", &root);
    StatGroup grand("bank0", &child);
    Scalar top(&root, "ticks", "");
    Scalar deep(&grand, "reads", "");
    EXPECT_EQ(root.resolveStat("ticks"), &top);
    EXPECT_EQ(root.resolveStat("mem.bank0.reads"), &deep);
    // The root's own name may be carried as a prefix (absolute form).
    EXPECT_EQ(root.resolveStat("sys.mem.bank0.reads"), &deep);
    EXPECT_EQ(root.resolveStat("mem.bank0.writes"), nullptr);
    EXPECT_EQ(root.resolveStat("nosuch.reads"), nullptr);
    EXPECT_EQ(child.resolveStat("bank0.reads"), &deep);
}

TEST(Stats, ResolveStatDottedGroupName)
{
    // Group names themselves may contain dots ("dram.ddr2-2gb",
    // "refresh.smart"); resolution must match child names greedily
    // instead of splitting on every dot.
    StatGroup root("sys");
    StatGroup policy("refresh.smart", &root);
    Scalar s(&policy, "touchesDeferred", "");
    EXPECT_EQ(root.resolveStat("refresh.smart.touchesDeferred"), &s);
    EXPECT_EQ(policy.resolveStat("refresh.smart.touchesDeferred"), &s);
    EXPECT_EQ(root.resolveStat("refresh.touchesDeferred"), nullptr);
}

TEST(Stats, HistogramBucketCounts)
{
    StatGroup root("root");
    Histogram h(&root, "h", "", 0.0, 10.0, 5); // buckets of width 2
    h.sample(1.0);
    h.sample(1.5);
    h.sample(9.9);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
}

TEST(Stats, VectorDumpShowsLabelsAndTotal)
{
    StatGroup root("root");
    VectorStat v(&root, "perBank", "spread", {"b0", "b1"});
    v[0] = 3.0;
    v[1] = 4.0;
    std::ostringstream oss;
    root.dumpStats(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("perBank::b0"), std::string::npos);
    EXPECT_NE(out.find("perBank::b1"), std::string::npos);
    EXPECT_NE(out.find("perBank::total"), std::string::npos);
}

TEST(Stats, FormulaSurvivesReset)
{
    StatGroup root("root");
    Scalar a(&root, "a", "");
    Formula f(&root, "fa", "", [&a] { return a.value() + 1.0; });
    a = 5.0;
    root.resetStats();
    EXPECT_DOUBLE_EQ(f.value(), 1.0); // reads the reset scalar
}

/**
 * @file
 * Tests for the run-provenance module: build identity, the shared
 * FNV-1a hash (whose constants the pinned sweep seeds depend on), and
 * the meta-block JSON emitted into every artifact.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/mini_json.hh"
#include "sim/provenance.hh"

using namespace smartref;

TEST(Provenance, BuildInfoIsPopulated)
{
    const BuildInfo &info = buildInfo();
    // Configure-time capture can degrade to fallbacks but never to
    // empty strings.
    EXPECT_FALSE(info.gitSha.empty());
    EXPECT_FALSE(info.compiler.empty());
    EXPECT_FALSE(info.buildType.empty());
}

TEST(Provenance, Fnv1a64MatchesPinnedConstants)
{
    // Offset basis and prime are part of the public contract: the
    // sweep's deriveJobSeed() hashes point keys with this function, and
    // tests/test_sweep.cpp pins the resulting seeds.
    EXPECT_EQ(fnv1a64(""), 1469598103934665603ULL);
    EXPECT_EQ(fnv1a64("a"),
              (1469598103934665603ULL ^ 'a') * 1099511628211ULL);
}

TEST(Provenance, Hex64IsFixedWidthLowercase)
{
    EXPECT_EQ(hex64(0), "0000000000000000");
    EXPECT_EQ(hex64(0xdeadbeefULL), "00000000deadbeef");
    EXPECT_EQ(hex64(~0ULL), "ffffffffffffffff");
}

TEST(Provenance, MetaJsonParsesAndCarriesBuildIdentity)
{
    RunMeta meta;
    meta.schema = "smartref-test-v1";
    meta.configHash = hex64(fnv1a64("config"));
    meta.seedMode = "derived";
    const minijson::Value v = minijson::parse(metaJson(meta));
    EXPECT_EQ(v.at("schemaVersion").str, "smartref-test-v1");
    EXPECT_EQ(v.at("gitSha").str, buildInfo().gitSha);
    EXPECT_EQ(v.at("compiler").str, buildInfo().compiler);
    EXPECT_EQ(v.at("buildType").str, buildInfo().buildType);
    EXPECT_EQ(v.at("configHash").str, meta.configHash);
    EXPECT_EQ(v.at("seedMode").str, "derived");
}

TEST(Provenance, MetaJsonOmitsEmptyRunFields)
{
    RunMeta meta;
    meta.schema = "smartref-test-v1";
    const minijson::Value v = minijson::parse(metaJson(meta));
    EXPECT_FALSE(v.has("configHash"));
    EXPECT_FALSE(v.has("seedMode"));
}

TEST(Provenance, MetaJsonIsDeterministic)
{
    RunMeta meta;
    meta.schema = "s";
    meta.configHash = "h";
    // Identical inputs must serialise identically: the meta block is
    // embedded in byte-identity-checked aggregates.
    EXPECT_EQ(metaJson(meta), metaJson(meta));
    std::ostringstream os;
    writeMetaJson(os, meta);
    EXPECT_EQ(os.str(), metaJson(meta));
}

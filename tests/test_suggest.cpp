/**
 * @file
 * Did-you-mean suggestion tests: edit-distance budget, deterministic
 * tie-breaking, message formatting, and the CLI integration — a typo'd
 * trace category fails fast with the closest real category named.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/suggest.hh"
#include "sim/tracer.hh"

using namespace smartref;

namespace {

const std::vector<std::string> kCategories = {
    "dram", "refresh", "counter", "monitor",
    "rowbuf", "queue", "interval", "all"};

} // namespace

TEST(Suggest, FindsTheClosestCandidate)
{
    EXPECT_EQ(suggestClosest("refrsh", kCategories), "refresh");
    EXPECT_EQ(suggestClosest("countre", kCategories), "counter");
    // An exact match needs no suggestion.
    EXPECT_EQ(suggestClosest("dram", kCategories), "");
}

TEST(Suggest, RespectsTheEditBudget)
{
    // Budget is max(2, len/3): a short token tolerates two edits…
    EXPECT_EQ(suggestClosest("queu", kCategories), "queue");
    // …but something far from every candidate suggests nothing.
    EXPECT_EQ(suggestClosest("xyzzyplugh", kCategories), "");
    EXPECT_EQ(suggestClosest("zzzzzzz", kCategories), "");
}

TEST(Suggest, LongPathsGetAProportionalBudget)
{
    const std::vector<std::string> paths = {
        "system.ctrl.rowMisses", "system.ctrl.rowHits"};
    // 4 edits off a 22-character path is within len/3.
    EXPECT_EQ(suggestClosest("system.ctl.rowMises", paths),
              "system.ctrl.rowMisses");
}

TEST(Suggest, TiesResolveLexicographically)
{
    const std::vector<std::string> candidates = {"aby", "abx"};
    EXPECT_EQ(suggestClosest("abz", candidates), "abx");
}

TEST(Suggest, DidYouMeanFormatsOrStaysSilent)
{
    EXPECT_EQ(didYouMean("refrsh", kCategories),
              " (did you mean 'refresh'?)");
    EXPECT_EQ(didYouMean("xyzzyplugh", kCategories), "");
}

TEST(Suggest, EmptyInputsAreHandled)
{
    EXPECT_EQ(suggestClosest("ab", {}), "");
    // An empty token is two edits from "all" — inside the budget.
    EXPECT_EQ(suggestClosest("", kCategories), "");
}

TEST(Suggest, UnknownTraceCategoryFailsFastWithSuggestion)
{
    try {
        parseTraceCategories("refrsh");
        FAIL() << "expected a fatal error";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("unknown trace category 'refrsh'"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("did you mean 'refresh'"), std::string::npos)
            << what;
    }
    // Valid lists still parse (and "all"/"none" stay special).
    EXPECT_NO_THROW(parseTraceCategories("refresh,counter"));
    EXPECT_NO_THROW(parseTraceCategories("none"));
}

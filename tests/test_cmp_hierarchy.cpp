#include <gtest/gtest.h>

#include "cache/cmp_hierarchy.hh"

using namespace smartref;

namespace {

CmpHierarchy
makeCmp(StatGroup *root, std::uint32_t cores = 2)
{
    CacheConfig l1;
    l1.name = "L1.";
    l1.sizeBytes = 1024;
    l1.assoc = 2;
    l1.hitLatency = 1 * kNanosecond;
    CacheConfig l2;
    l2.name = "L2";
    l2.sizeBytes = 8192;
    l2.assoc = 4;
    l2.hitLatency = 5 * kNanosecond;
    return CmpHierarchy(cores, l1, l2, root);
}

} // namespace

TEST(CmpHierarchy, PrivateL1sAreIndependent)
{
    StatGroup root("root");
    auto h = makeCmp(&root);
    h.access(0, 0x1000, false); // core 0 fills its L1 + shared L2
    // Core 1 misses its own L1 but hits the shared L2.
    const auto r = h.access(1, 0x1000, false);
    EXPECT_EQ(r.hitLevel, 2);
    EXPECT_EQ(h.l1(0).hits() + h.l1(0).misses(), 1u);
    EXPECT_EQ(h.l1(1).misses(), 1u);
}

TEST(CmpHierarchy, CoreHitsItsOwnL1)
{
    StatGroup root("root");
    auto h = makeCmp(&root);
    h.access(0, 0x40, false);
    const auto r = h.access(0, 0x40, false);
    EXPECT_EQ(r.hitLevel, 1);
    EXPECT_EQ(r.cacheLatency, 1 * kNanosecond);
}

TEST(CmpHierarchy, SharedL2MissReachesMemory)
{
    StatGroup root("root");
    auto h = makeCmp(&root);
    const auto r = h.access(1, 0x9000, true);
    EXPECT_EQ(r.hitLevel, 0);
    ASSERT_GE(r.memOps.size(), 1u);
    EXPECT_EQ(r.memOps[0].addr, 0x9000u);
    EXPECT_FALSE(r.memOps[0].write); // the fill read
}

TEST(CmpHierarchy, DirtyL1VictimReachesSharedL2)
{
    StatGroup root("root");
    auto h = makeCmp(&root);
    // L1: 8 sets, stride 512. Dirty a line, then push it out of core
    // 0's L1 with two conflicting clean lines.
    h.access(0, 0, true);
    h.access(0, 512, false);
    h.access(0, 1024, false);
    // The dirty victim was written through into the shared L2, so core
    // 1 (cold L1) finds it there.
    EXPECT_EQ(h.access(1, 0, false).hitLevel, 2);
}

TEST(CmpHierarchy, OutOfRangeCorePanics)
{
    StatGroup root("root");
    auto h = makeCmp(&root, 2);
    EXPECT_THROW(h.access(2, 0, false), std::logic_error);
}

TEST(CmpHierarchy, MemoryFractionAggregatesCores)
{
    StatGroup root("root");
    auto h = makeCmp(&root);
    h.access(0, 0, false);  // miss
    h.access(0, 0, false);  // L1 hit
    h.access(1, 64, false); // miss
    h.access(1, 64, false); // L1 hit
    EXPECT_DOUBLE_EQ(h.memoryAccessFraction(), 0.5);
    EXPECT_EQ(h.numCores(), 2u);
}

#include <gtest/gtest.h>

#include "sim/types.hh"

using namespace smartref;

TEST(Types, UnitRelations)
{
    EXPECT_EQ(kNanosecond, 1000u * kPicosecond);
    EXPECT_EQ(kMicrosecond, 1000u * kNanosecond);
    EXPECT_EQ(kMillisecond, 1000u * kMicrosecond);
    EXPECT_EQ(kSecond, 1000u * kMillisecond);
}

TEST(Types, PeriodFromMHz)
{
    EXPECT_EQ(periodFromMHz(1000), 1000u);       // 1 GHz -> 1 ns
    EXPECT_EQ(periodFromMHz(500), 2000u);        // 500 MHz -> 2 ns
    EXPECT_EQ(periodFromMHz(667), 1499u);        // DDR2-667 data rate
}

TEST(Types, CapacityHelpers)
{
    EXPECT_EQ(kKiB, 1024u);
    EXPECT_EQ(kMiB, 1024u * 1024u);
    EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
}

TEST(Types, TickMaxIsNever)
{
    EXPECT_GT(kTickMax, kSecond * 3600u * 24u * 365u);
}

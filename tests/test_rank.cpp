#include <gtest/gtest.h>

#include <set>

#include "dram/rank.hh"
#include "test_config.hh"

using namespace smartref;

class RankTest : public ::testing::Test
{
  protected:
    DramConfig cfg = tcfg::tinyConfig(); // 2 banks x 64 rows
    Rank rank{cfg.org};
};

TEST_F(RankTest, AnyBankOpenReflectsBanks)
{
    EXPECT_FALSE(rank.anyBankOpen());
    rank.bank(1).activate(5, 0, cfg.timing);
    EXPECT_TRUE(rank.anyBankOpen());
    rank.bank(1).precharge(cfg.timing.tRAS, cfg.timing);
    EXPECT_FALSE(rank.anyBankOpen());
}

TEST_F(RankTest, CbrWalkAlternatesBanksFirst)
{
    auto [b0, r0] = rank.nextCbrTarget();
    auto [b1, r1] = rank.nextCbrTarget();
    auto [b2, r2] = rank.nextCbrTarget();
    EXPECT_EQ(b0, 0u);
    EXPECT_EQ(b1, 1u);
    EXPECT_EQ(b2, 0u);
    EXPECT_EQ(r0, 0u);
    EXPECT_EQ(r1, 0u);
    EXPECT_EQ(r2, 1u);
}

TEST_F(RankTest, CbrWalkCoversEveryBankRowPairExactlyOnce)
{
    const std::uint64_t total =
        std::uint64_t(cfg.org.banks) * cfg.org.rows;
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (std::uint64_t i = 0; i < total; ++i)
        seen.insert(rank.nextCbrTarget());
    EXPECT_EQ(seen.size(), total);
}

TEST_F(RankTest, CbrWalkWrapsAround)
{
    const std::uint64_t total =
        std::uint64_t(cfg.org.banks) * cfg.org.rows;
    const auto first = rank.peekCbrTarget();
    for (std::uint64_t i = 0; i < total; ++i)
        rank.nextCbrTarget();
    EXPECT_EQ(rank.peekCbrTarget(), first);
}

TEST_F(RankTest, PeekLookaheadMatchesFutureWalk)
{
    const auto ahead3 = rank.peekCbrTarget(3);
    rank.nextCbrTarget();
    rank.nextCbrTarget();
    rank.nextCbrTarget();
    EXPECT_EQ(rank.peekCbrTarget(), ahead3);
}

TEST_F(RankTest, PeekDoesNotAdvance)
{
    const auto a = rank.peekCbrTarget();
    const auto b = rank.peekCbrTarget();
    EXPECT_EQ(a, b);
    EXPECT_EQ(rank.cbrCounter(), 0u);
}

TEST_F(RankTest, ActivateTracksRrdAndBusy)
{
    rank.noteActivate(1000, cfg.timing);
    EXPECT_EQ(rank.nextActAllowed(), 1000 + cfg.timing.tRRD);
    EXPECT_EQ(rank.lastBusyEnd(), 1000 + cfg.timing.tRC);
}

TEST_F(RankTest, NoteBusyKeepsMaximum)
{
    rank.noteBusy(500);
    rank.noteBusy(300);
    EXPECT_EQ(rank.lastBusyEnd(), 500u);
}

TEST_F(RankTest, PowerIntegrationBookkeeping)
{
    EXPECT_EQ(rank.powerIntegratedTo(), 0u);
    rank.setPowerIntegratedTo(12345);
    EXPECT_EQ(rank.powerIntegratedTo(), 12345u);
}

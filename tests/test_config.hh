/**
 * @file
 * Shared miniature configurations for fast unit/property tests.
 */

#pragma once

#include "dram/dram_config.hh"

namespace smartref::tcfg {

/**
 * A tiny module: 1 rank x 2 banks x 64 rows x 64 columns, 4 ms
 * retention. Small enough that property tests sweep multiple retention
 * intervals in milliseconds of simulated time.
 */
inline DramConfig
tinyConfig()
{
    DramConfig c;
    c.name = "tiny";
    c.org.ranks = 1;
    c.org.banks = 2;
    c.org.rows = 64;
    c.org.columns = 64;
    c.org.dataWidthBits = 72;
    c.org.deviceWidthBits = 8;
    c.timing.retention = 4 * kMillisecond;
    return c;
}

/** tinyConfig with two ranks and four banks (128 x 4 rows). */
inline DramConfig
smallConfig()
{
    DramConfig c = tinyConfig();
    c.name = "small";
    c.org.ranks = 2;
    c.org.banks = 4;
    c.org.rows = 128;
    c.timing.retention = 8 * kMillisecond;
    return c;
}

} // namespace smartref::tcfg

/**
 * @file
 * RefreshHeatmap tests: recording semantics (refreshes, demand
 * distances, counter-value split), shape-checked merging, export
 * formats, and the sweep-level determinism contract — merged heatmap
 * JSON/CSV byte-identical for -j1 vs -j8, with telemetry attached and
 * not attached.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ctrl/refresh_heatmap.hh"
#include "harness/sweep.hh"
#include "harness/sweep_telemetry.hh"
#include "sim/mini_json.hh"

using namespace smartref;

namespace {

/** One config x two benchmarks so one summary group merges two jobs. */
SweepGrid
heatGrid()
{
    SweepGrid g;
    g.name = "heat";
    g.configs = {"2gb"};
    g.benchmarks = {"mummer", "gcc"};
    g.policies = {"smart"};
    g.counterBits = {3};
    g.retentionMs = {0};
    return g;
}

SweepRunOptions
fastOptions(unsigned jobs)
{
    SweepRunOptions opts;
    opts.jobs = jobs;
    opts.warmup = 2 * kMillisecond;
    opts.measure = 4 * kMillisecond;
    opts.collectHeatmaps = true;
    return opts;
}

std::string
heatmapJson(const SweepGrid &grid, const SweepRunOptions &opts,
            const std::vector<SweepJobResult> &results)
{
    std::ostringstream oss;
    writeSweepHeatmapJson(grid, opts, results, oss);
    return oss.str();
}

std::string
heatmapCsv(const std::vector<SweepJobResult> &results)
{
    std::ostringstream oss;
    writeSweepHeatmapCsv(results, oss);
    return oss.str();
}

std::string
aggregateJson(const SweepGrid &grid, const SweepRunOptions &opts,
              const std::vector<SweepJobResult> &results)
{
    std::ostringstream oss;
    writeSweepJson(grid, opts, results, oss);
    return oss.str();
}

} // namespace

TEST(Heatmap, RecordsRefreshesAndDemandsPerCell)
{
    RefreshHeatmap hm(2, 4, 8, 7);
    hm.recordRefresh(0, 1);
    hm.recordRefresh(0, 1);
    hm.recordRefresh(1, 3);
    EXPECT_EQ(hm.refreshes(0, 1), 2u);
    EXPECT_EQ(hm.refreshes(1, 3), 1u);
    EXPECT_EQ(hm.refreshes(0, 0), 0u);
    EXPECT_EQ(hm.totalRefreshes(), 3u);

    // First access to a cell sets the timestamp without a distance
    // sample; subsequent accesses land in the log2 bucket of the delta.
    hm.recordDemand(0, 0, 100);
    hm.recordDemand(0, 0, 100); // delta 0 -> bucket 0
    hm.recordDemand(0, 0, 104); // delta 4 -> bit_width 3
    hm.recordDemand(0, 0, 105); // delta 1 -> bit_width 1
    EXPECT_EQ(hm.demands(0, 0), 4u);
    EXPECT_EQ(hm.distanceCount(0, 0, 0), 1u);
    EXPECT_EQ(hm.distanceCount(0, 0, 3), 1u);
    EXPECT_EQ(hm.distanceCount(0, 0, 1), 1u);
    EXPECT_EQ(hm.totalDemands(), 4u);
}

TEST(Heatmap, CounterTouchSplitsExpiriesFromSkips)
{
    RefreshHeatmap hm(1, 1, 4, 7);
    hm.recordCounterTouch(2, 0); // expiry
    hm.recordCounterTouch(2, 0);
    hm.recordCounterTouch(2, 5); // skip
    hm.recordCounterTouch(3, 7); // skip, other segment
    EXPECT_EQ(hm.segmentExpiries(2), 2u);
    EXPECT_EQ(hm.segmentSkips(2), 1u);
    EXPECT_EQ(hm.segmentSkips(3), 1u);
    EXPECT_EQ(hm.counterValueCount(2, 0), 2u);
    EXPECT_EQ(hm.counterValueCount(2, 5), 1u);
    EXPECT_EQ(hm.counterValueCount(3, 7), 1u);
    EXPECT_EQ(hm.totalExpiries(), 2u);
    EXPECT_EQ(hm.totalSkips(), 2u);
}

TEST(Heatmap, MergeIsCellWiseAdditionAndIgnoresLastAccess)
{
    RefreshHeatmap a(1, 2, 2, 3);
    RefreshHeatmap b(1, 2, 2, 3);
    a.recordRefresh(0, 0);
    a.recordDemand(0, 1, 10);
    a.recordDemand(0, 1, 12); // delta 2 -> bucket 2
    a.recordCounterTouch(0, 0);
    b.recordRefresh(0, 0);
    b.recordRefresh(0, 1);
    b.recordCounterTouch(0, 3);
    // b's demand stream starts fresh: its first access takes no
    // distance sample even though a's lastAccess was 12.
    b.recordDemand(0, 1, 1000);
    a.merge(b);
    EXPECT_EQ(a.refreshes(0, 0), 2u);
    EXPECT_EQ(a.refreshes(0, 1), 1u);
    EXPECT_EQ(a.demands(0, 1), 3u);
    EXPECT_EQ(a.distanceCount(0, 1, 2), 1u);
    EXPECT_EQ(a.counterValueCount(0, 0), 1u);
    EXPECT_EQ(a.counterValueCount(0, 3), 1u);
    EXPECT_TRUE(a.sameShape(b));
}

TEST(Heatmap, MergingAnEmptyShardIsIdentity)
{
    RefreshHeatmap a(2, 2, 4, 7);
    a.recordRefresh(1, 0);
    a.recordDemand(0, 1, 50);
    a.recordCounterTouch(2, 0);
    RefreshHeatmap empty(2, 2, 4, 7);

    std::ostringstream before;
    a.writeJson(before);
    a.merge(empty);
    std::ostringstream after;
    a.writeJson(after);
    EXPECT_EQ(before.str(), after.str());

    // The symmetric case: an empty accumulator absorbing a populated
    // shard equals that shard (the sweep reducer's first merge).
    RefreshHeatmap fresh(2, 2, 4, 7);
    fresh.merge(a);
    std::ostringstream absorbed;
    fresh.writeJson(absorbed);
    EXPECT_EQ(absorbed.str(), after.str());
}

TEST(Heatmap, MergingPartiallyPopulatedShardsTouchesOnlyTheirCells)
{
    RefreshHeatmap a(1, 3, 2, 3);
    a.recordRefresh(0, 0);
    // The shard saw traffic on bank 2 only; banks 0/1 stay untouched.
    RefreshHeatmap shard(1, 3, 2, 3);
    shard.recordRefresh(0, 2);
    shard.recordRefresh(0, 2);
    shard.recordCounterTouch(1, 0);

    a.merge(shard);
    EXPECT_EQ(a.refreshes(0, 0), 1u);
    EXPECT_EQ(a.refreshes(0, 1), 0u);
    EXPECT_EQ(a.refreshes(0, 2), 2u);
    EXPECT_EQ(a.demands(0, 2), 0u);
    EXPECT_EQ(a.segmentExpiries(1), 1u);
    EXPECT_EQ(a.totalRefreshes(), 3u);
}

TEST(Heatmap, JsonExportParsesAndMatchesAccessors)
{
    RefreshHeatmap hm(1, 2, 2, 3);
    hm.recordRefresh(0, 1);
    hm.recordDemand(0, 0, 5);
    hm.recordCounterTouch(1, 2);
    std::ostringstream oss;
    hm.writeJson(oss);
    const minijson::Value v = minijson::parse(oss.str());
    EXPECT_EQ(v.at("schema").str, "smartref-heatmap-v1");
    EXPECT_EQ(v.at("ranks").number, 1.0);
    EXPECT_EQ(v.at("banks").number, 2.0);
    EXPECT_EQ(v.at("cells").array.size(), 2u);
    EXPECT_EQ(v.at("cells").at(1).at("refreshes").number, 1.0);
    EXPECT_EQ(v.at("cells").at(0).at("demandAccesses").number, 1.0);
    EXPECT_EQ(v.at("segmentCounters").at(1).at("skips").number, 1.0);
    EXPECT_EQ(v.at("totals").at("refreshes").number, 1.0);
}

TEST(Heatmap, CsvExportSkipsHeaderOnRequest)
{
    RefreshHeatmap hm(1, 1, 1, 1);
    hm.recordRefresh(0, 0);
    std::ostringstream with, without;
    hm.writeCsv(with);
    hm.writeCsv(without, /*header=*/false);
    EXPECT_EQ(with.str(),
              "kind,rank,bank,segment,bucket,value\n" + without.str());
}

TEST(Heatmap, SweepJobsCollectHeatmapsOnlyWhenAsked)
{
    SweepRunOptions off = fastOptions(1);
    off.collectHeatmaps = false;
    const auto plain = runSweep(heatGrid(), off);
    for (const auto &r : plain)
        EXPECT_EQ(r.heatmap, nullptr);

    const auto collected = runSweep(heatGrid(), fastOptions(1));
    for (const auto &r : collected) {
        ASSERT_NE(r.heatmap, nullptr);
        // The policy-under-test run is observed: a smart-policy job
        // always walks counters, so touches must have been recorded.
        EXPECT_GT(r.heatmap->totalSkips() + r.heatmap->totalExpiries(),
                  0u);
    }
}

TEST(Heatmap, MergedSweepExportIsByteIdenticalAcrossJobCounts)
{
    const SweepGrid grid = heatGrid();
    const auto r1 = runSweep(grid, fastOptions(1));
    const auto r8 = runSweep(grid, fastOptions(8));
    EXPECT_EQ(heatmapJson(grid, fastOptions(1), r1),
              heatmapJson(grid, fastOptions(8), r8));
    EXPECT_EQ(heatmapCsv(r1), heatmapCsv(r8));

    const minijson::Value v =
        minijson::parse(heatmapJson(grid, fastOptions(1), r1));
    EXPECT_EQ(v.at("schema").str, "smartref-sweep-heatmap-v1");
    ASSERT_EQ(v.at("groups").array.size(), 1u); // one (config,bits) group
    EXPECT_EQ(v.at("groups").at(0).at("jobs").number, 2.0);
    EXPECT_TRUE(v.at("meta").has("configHash"));
}

TEST(Heatmap, TelemetryNeverPerturbsDeterministicOutputs)
{
    const SweepGrid grid = heatGrid();
    const auto silent = runSweep(grid, fastOptions(1));

    std::ostringstream stream;
    SweepTelemetry telemetry(stream);
    SweepRunOptions withTelemetry = fastOptions(8);
    withTelemetry.telemetry = &telemetry;
    const auto observed = runSweep(grid, withTelemetry);

    // Aggregates and heatmaps must not change by a byte when a
    // telemetry sink is attached; the stream itself must carry events.
    EXPECT_EQ(aggregateJson(grid, fastOptions(1), silent),
              aggregateJson(grid, withTelemetry, observed));
    EXPECT_EQ(heatmapJson(grid, fastOptions(1), silent),
              heatmapJson(grid, withTelemetry, observed));
    EXPECT_NE(stream.str().find("\"event\":\"job_finish\""),
              std::string::npos);
    EXPECT_NE(stream.str().find("\"event\":\"sweep_finish\""),
              std::string::npos);
    // NDJSON: every line parses as one standalone JSON object.
    std::istringstream lines(stream.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        const minijson::Value v = minijson::parse(line);
        EXPECT_TRUE(v.isObject()) << line;
        EXPECT_TRUE(v.has("event")) << line;
        ++count;
    }
    // 2 jobs: job_start + job_finish each, plus sweep_finish (the
    // sweep_start event is the caller's responsibility).
    EXPECT_EQ(count, 5u);
}

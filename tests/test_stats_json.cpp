#include <gtest/gtest.h>

#include <sstream>

#include "sim/mini_json.hh"
#include "sim/stats.hh"
#include "sim/stats_json.hh"

using namespace smartref;

namespace {

/** Build a tree exercising every stat kind, export it, parse it back. */
struct ExportedTree
{
    StatGroup root{"sys"};
    StatGroup mem{"mem", &root};
    Scalar reads{&mem, "reads", "read count"};
    VectorStat perBank{&mem, "perBank", "per-bank spread", {"b0", "b1"}};
    Histogram latency{&mem, "latency", "access latency", 0.0, 100.0, 4};
    Formula ratio{&root, "ratio", "reads per bucket",
                  [this] { return reads.value() / 4.0; }};

    minijson::Value
    exportAndParse()
    {
        std::ostringstream oss;
        writeStatsJson(root, oss);
        return minijson::parse(oss.str());
    }
};

} // namespace

TEST(StatsJson, RoundTripsEveryStatKind)
{
    ExportedTree t;
    t.reads = 12.0;
    t.perBank[0] = 3.0;
    t.perBank[1] = 4.0;
    t.latency.sample(-5.0);  // underflow
    t.latency.sample(10.0);  // bucket 0
    t.latency.sample(60.0);  // bucket 2
    t.latency.sample(250.0); // overflow

    const minijson::Value doc = t.exportAndParse();
    EXPECT_EQ(doc.at("root").str, "sys");
    const minijson::Value &stats = doc.at("stats");
    ASSERT_TRUE(stats.isObject());

    const minijson::Value &scalar = stats.at("sys.mem.reads");
    EXPECT_EQ(scalar.at("kind").str, "scalar");
    EXPECT_DOUBLE_EQ(scalar.at("value").number, 12.0);
    EXPECT_EQ(scalar.at("desc").str, "read count");

    const minijson::Value &vec = stats.at("sys.mem.perBank");
    EXPECT_EQ(vec.at("kind").str, "vector");
    ASSERT_EQ(vec.at("labels").array.size(), 2u);
    EXPECT_EQ(vec.at("labels").at(0).str, "b0");
    EXPECT_EQ(vec.at("labels").at(1).str, "b1");
    EXPECT_DOUBLE_EQ(vec.at("values").at(0).number, 3.0);
    EXPECT_DOUBLE_EQ(vec.at("values").at(1).number, 4.0);
    EXPECT_DOUBLE_EQ(vec.at("total").number, 7.0);

    const minijson::Value &hist = stats.at("sys.mem.latency");
    EXPECT_EQ(hist.at("kind").str, "histogram");
    EXPECT_EQ(hist.at("samples").number, 4.0);
    EXPECT_EQ(hist.at("underflows").number, 1.0);
    EXPECT_EQ(hist.at("overflows").number, 1.0);
    EXPECT_DOUBLE_EQ(hist.at("lo").number, 0.0);
    EXPECT_DOUBLE_EQ(hist.at("hi").number, 100.0);
    ASSERT_EQ(hist.at("buckets").array.size(), 4u);
    EXPECT_EQ(hist.at("buckets").at(0).number, 1.0);
    EXPECT_EQ(hist.at("buckets").at(1).number, 0.0);
    EXPECT_EQ(hist.at("buckets").at(2).number, 1.0);
    EXPECT_EQ(hist.at("buckets").at(3).number, 0.0);
    EXPECT_DOUBLE_EQ(hist.at("min").number, -5.0);
    EXPECT_DOUBLE_EQ(hist.at("max").number, 250.0);

    const minijson::Value &formula = stats.at("sys.ratio");
    EXPECT_EQ(formula.at("kind").str, "formula");
    EXPECT_DOUBLE_EQ(formula.at("value").number, 3.0);
}

TEST(StatsJson, HistogramExportCarriesPercentiles)
{
    ExportedTree t;
    // Buckets of width 25, midpoints 12.5/37.5/62.5/87.5.
    t.latency.sample(12.0, 50);
    t.latency.sample(60.0, 45);
    t.latency.sample(90.0, 5);
    const minijson::Value doc = t.exportAndParse();
    const minijson::Value &hist = doc.at("stats").at("sys.mem.latency");
    EXPECT_DOUBLE_EQ(hist.at("p50").number, 12.5);
    EXPECT_DOUBLE_EQ(hist.at("p95").number, 62.5);
    EXPECT_DOUBLE_EQ(hist.at("p99").number, 87.5);
}

TEST(StatsJson, EmptyHistogramPercentilesBecomeNull)
{
    ExportedTree t;
    const minijson::Value doc = t.exportAndParse();
    const minijson::Value &hist = doc.at("stats").at("sys.mem.latency");
    EXPECT_TRUE(hist.at("p50").isNull());
    EXPECT_TRUE(hist.at("p95").isNull());
    EXPECT_TRUE(hist.at("p99").isNull());
}

TEST(StatsJson, MetaBlockIsEmbeddedWhenProvided)
{
    StatGroup root("sys");
    Scalar s(&root, "x", "");
    s = 1.0;
    std::ostringstream oss;
    writeStatsJson(root, oss, "{\"schemaVersion\": \"test-v1\"}");
    const minijson::Value doc = minijson::parse(oss.str());
    ASSERT_TRUE(doc.has("meta"));
    EXPECT_EQ(doc.at("meta").at("schemaVersion").str, "test-v1");

    // Without a meta string the member is absent, not empty.
    std::ostringstream plain;
    writeStatsJson(root, plain);
    EXPECT_FALSE(minijson::parse(plain.str()).has("meta"));
}

TEST(StatsJson, EmptyHistogramMomentsBecomeNull)
{
    ExportedTree t;
    const minijson::Value doc = t.exportAndParse();
    // An empty histogram has no defined mean/min/max; JSON has no NaN,
    // so the exporter must write null rather than invalid output.
    const minijson::Value &hist = doc.at("stats").at("sys.mem.latency");
    EXPECT_EQ(hist.at("samples").number, 0.0);
    EXPECT_TRUE(hist.at("mean").isNull() || hist.at("mean").isNumber());
}

TEST(StatsJson, EveryExportedKeyResolvesInTheTree)
{
    ExportedTree t;
    const minijson::Value doc = t.exportAndParse();
    const auto &stats = doc.at("stats").object;
    EXPECT_EQ(stats.size(), 4u);
    for (const auto &[name, value] : stats) {
        const StatBase *stat = t.root.resolveStat(name);
        ASSERT_NE(stat, nullptr) << name;
        EXPECT_TRUE(value.has("kind")) << name;
    }
}

TEST(StatsJson, EscapesSpecialCharactersInDescriptions)
{
    StatGroup root("r");
    Scalar s(&root, "weird", "say \"hi\"\tand\nbye \\o/");
    std::ostringstream oss;
    writeStatsJson(root, oss);
    const minijson::Value doc = minijson::parse(oss.str());
    EXPECT_EQ(doc.at("stats").at("r.weird").at("desc").str,
              "say \"hi\"\tand\nbye \\o/");
}

TEST(StatsJson, StatValueCoversEveryKind)
{
    ExportedTree t;
    t.reads = 8.0;
    t.perBank[0] = 1.0;
    t.perBank[1] = 2.0;
    t.latency.sample(5.0);
    EXPECT_DOUBLE_EQ(statValue(*t.root.resolveStat("mem.reads")), 8.0);
    EXPECT_DOUBLE_EQ(statValue(*t.root.resolveStat("mem.perBank")), 3.0);
    EXPECT_DOUBLE_EQ(statValue(*t.root.resolveStat("mem.latency")), 1.0);
    EXPECT_DOUBLE_EQ(statValue(*t.root.resolveStat("ratio")), 2.0);
}

#include <gtest/gtest.h>

#include "cpu/simple_core.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

CoreParams
fastCore()
{
    CoreParams p;
    p.frequencyGHz = 2.0;
    p.baseIpc = 1.0;
    p.accessesPerKiloInstr = 100.0; // access every 10 instructions
    return p;
}

WorkloadParams
pattern()
{
    WorkloadParams wp;
    wp.footprintRows = 32;
    wp.accessesPerVisit = 2;
    wp.readFraction = 1.0; // all loads: every access blocks
    wp.seed = 11;
    return wp;
}

} // namespace

TEST(SimpleCore, PerfectMemoryReachesBaseIpc)
{
    EventQueue eq;
    StatGroup root("root");
    // Zero-latency memory: data returns instantly.
    SimpleCore core(
        fastCore(), pattern(), 1024,
        [&eq](Addr, bool, std::function<void(Tick)> done) {
            done(eq.now());
        },
        eq, &root);
    core.start();
    eq.runUntil(kMillisecond);
    EXPECT_NEAR(core.effectiveIpc(eq.now()), 1.0, 0.02);
    EXPECT_GT(core.instructionsRetired(), 1000000u);
    EXPECT_DOUBLE_EQ(core.stallTicks(), 0.0);
}

TEST(SimpleCore, MemoryLatencyCostsIpc)
{
    EventQueue eq;
    StatGroup root("root");
    // 100 ns flat load latency; compute gap is 5 ns (10 instr @ 2 GHz).
    SimpleCore core(
        fastCore(), pattern(), 1024,
        [&eq](Addr, bool, std::function<void(Tick)> done) {
            done(eq.now() + 100 * kNanosecond);
        },
        eq, &root);
    core.start();
    eq.runUntil(kMillisecond);
    // Each 10-instruction quantum takes 5 + 100 ns -> IPC ~ 10/(105*2).
    EXPECT_NEAR(core.effectiveIpc(eq.now()), 10.0 / 210.0, 0.005);
    EXPECT_GT(core.stallTicks(), 0.0);
}

TEST(SimpleCore, StoresDoNotBlock)
{
    EventQueue eq;
    StatGroup root("root");
    WorkloadParams wp = pattern();
    wp.readFraction = 0.0; // all stores
    SimpleCore core(
        fastCore(), wp, 1024,
        [&eq](Addr, bool write, std::function<void(Tick)> done) {
            EXPECT_TRUE(write);
            done(eq.now() + kMillisecond); // huge latency, but posted
        },
        eq, &root);
    core.start();
    eq.runUntil(kMillisecond);
    EXPECT_NEAR(core.effectiveIpc(eq.now()), 1.0, 0.02);
    EXPECT_DOUBLE_EQ(core.stallTicks(), 0.0);
    EXPECT_EQ(core.memoryAccesses(),
              static_cast<std::uint64_t>(core.instructionsRetired() / 10));
}

TEST(SimpleCore, StopHaltsRetirement)
{
    EventQueue eq;
    StatGroup root("root");
    SimpleCore core(
        fastCore(), pattern(), 1024,
        [&eq](Addr, bool, std::function<void(Tick)> done) {
            done(eq.now());
        },
        eq, &root);
    core.start();
    eq.runUntil(kMillisecond / 2);
    core.stop();
    const auto instrs = core.instructionsRetired();
    eq.runUntil(kMillisecond);
    EXPECT_EQ(core.instructionsRetired(), instrs);
}

TEST(SimpleCore, RejectsNonsenseParams)
{
    EventQueue eq;
    StatGroup root("root");
    CoreParams bad = fastCore();
    bad.baseIpc = 0.0;
    EXPECT_THROW(SimpleCore(bad, pattern(), 1024,
                            [](Addr, bool, std::function<void(Tick)>) {},
                            eq, &root),
                 std::logic_error);
}

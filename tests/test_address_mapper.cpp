#include <gtest/gtest.h>

#include <set>

#include "ctrl/address_mapper.hh"
#include "test_config.hh"

using namespace smartref;

class MapperSchemeTest : public ::testing::TestWithParam<AddressScheme>
{
};

TEST_P(MapperSchemeTest, RoundTripIsIdentity)
{
    const DramOrganization org = smartref::tcfg::smallConfig().org;
    AddressMapper mapper(org, GetParam());
    for (Addr addr = 0; addr < mapper.capacityBytes();
         addr += 4093) { // prime stride to hit varied fields
        const DramCoord c = mapper.decode(addr);
        EXPECT_EQ(mapper.encode(c), addr);
    }
}

TEST_P(MapperSchemeTest, FieldsStayInRange)
{
    const DramOrganization org = smartref::tcfg::smallConfig().org;
    AddressMapper mapper(org, GetParam());
    for (Addr addr = 0; addr < mapper.capacityBytes(); addr += 8191) {
        const DramCoord c = mapper.decode(addr);
        EXPECT_LT(c.rank, org.ranks);
        EXPECT_LT(c.bank, org.banks);
        EXPECT_LT(c.row, org.rows);
        EXPECT_LT(c.column, org.columns);
        EXPECT_LT(c.offset, org.bytesPerColumn());
    }
}

TEST_P(MapperSchemeTest, DistinctAddressesDistinctCoords)
{
    const DramOrganization org = smartref::tcfg::tinyConfig().org;
    AddressMapper mapper(org, GetParam());
    std::set<Addr> encodings;
    // Exhaustive over the tiny module at column granularity.
    for (Addr addr = 0; addr < mapper.capacityBytes();
         addr += org.bytesPerColumn()) {
        encodings.insert(mapper.encode(mapper.decode(addr)));
    }
    EXPECT_EQ(encodings.size(),
              mapper.capacityBytes() / org.bytesPerColumn());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, MapperSchemeTest,
    ::testing::Values(AddressScheme::RowRankBankColumn,
                      AddressScheme::RowBankRankColumn,
                      AddressScheme::RankBankRowColumn));

TEST(AddressMapper, DefaultSchemeKeepsRowsContiguous)
{
    const DramOrganization org = ddr2_2GB().org;
    AddressMapper mapper(org);
    // All addresses within one row span decode to the same (rank, bank,
    // row) under row:rank:bank:column.
    const DramCoord base = mapper.decode(0);
    for (Addr a = 0; a < org.rowBytes(); a += 512) {
        const DramCoord c = mapper.decode(a);
        EXPECT_EQ(c.rank, base.rank);
        EXPECT_EQ(c.bank, base.bank);
        EXPECT_EQ(c.row, base.row);
    }
    // The next row-sized block lands in a different bank.
    const DramCoord next = mapper.decode(org.rowBytes());
    EXPECT_NE(next.bank, base.bank);
}

TEST(AddressMapper, BlockLinearLayoutTouchesDistinctRows)
{
    // The workload generator relies on this: consecutive rowBytes-sized
    // blocks map to distinct (rank, bank, row) triples.
    const DramOrganization org = smartref::tcfg::smallConfig().org;
    AddressMapper mapper(org);
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
    for (std::uint64_t block = 0; block < org.totalRows(); ++block) {
        const DramCoord c = mapper.decode(block * org.rowBytes());
        seen.insert({c.rank, c.bank, c.row});
    }
    EXPECT_EQ(seen.size(), org.totalRows());
}

TEST(AddressMapper, WrapsModuloCapacity)
{
    const DramOrganization org = smartref::tcfg::tinyConfig().org;
    AddressMapper mapper(org);
    EXPECT_EQ(mapper.decode(5), mapper.decode(5 + mapper.capacityBytes()));
}

TEST(AddressMapper, SchemeNames)
{
    EXPECT_EQ(AddressMapper::schemeName(AddressScheme::RowRankBankColumn),
              "row:rank:bank:column");
    EXPECT_EQ(AddressMapper::schemeName(AddressScheme::RankBankRowColumn),
              "rank:bank:row:column");
}

TEST(AddressMapper, RejectsNonPowerOfTwoGeometry)
{
    DramOrganization org = smartref::tcfg::tinyConfig().org;
    org.columns = 100;
    EXPECT_THROW(AddressMapper mapper(org), std::runtime_error);
}

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/trace.hh"

using namespace smartref;

namespace {

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "smartref_trace_test.trc";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::vector<TraceRecord>
    sampleTrace() const
    {
        return {
            {0, 0x1000, false},
            {1500, 0xdeadbeef, true},
            {64 * kMillisecond, 0xffffffffffull, false},
        };
    }

    std::string path_;
};

} // namespace

TEST_F(TraceIoTest, TextRoundTrip)
{
    {
        TraceWriter writer(path_, TraceFormat::Text);
        for (const auto &rec : sampleTrace())
            writer.append(rec);
        EXPECT_EQ(writer.recordsWritten(), 3u);
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.format(), TraceFormat::Text);
    const auto records = TraceReader::readAll(path_);
    EXPECT_EQ(records, sampleTrace());
}

TEST_F(TraceIoTest, BinaryRoundTrip)
{
    {
        TraceWriter writer(path_, TraceFormat::Binary);
        for (const auto &rec : sampleTrace())
            writer.append(rec);
    }
    TraceReader reader(path_);
    EXPECT_EQ(reader.format(), TraceFormat::Binary);
    EXPECT_EQ(TraceReader::readAll(path_), sampleTrace());
}

TEST_F(TraceIoTest, FormatAutodetection)
{
    {
        TraceWriter writer(path_, TraceFormat::Binary);
        writer.append({1, 2, true});
    }
    EXPECT_EQ(TraceReader(path_).format(), TraceFormat::Binary);
    {
        TraceWriter writer(path_, TraceFormat::Text);
        writer.append({1, 2, true});
    }
    EXPECT_EQ(TraceReader(path_).format(), TraceFormat::Text);
}

TEST_F(TraceIoTest, TextFormatSkipsCommentsAndBlanks)
{
    {
        std::ofstream out(path_);
        out << "# a comment line\n"
            << "\n"
            << "100 0xff R\n"
            << "# another\n"
            << "200 0x10 W\n";
    }
    const auto records = TraceReader::readAll(path_);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], (TraceRecord{100, 0xff, false}));
    EXPECT_EQ(records[1], (TraceRecord{200, 0x10, true}));
}

TEST_F(TraceIoTest, MalformedTextLineFatals)
{
    {
        std::ofstream out(path_);
        out << "not a trace line\n";
    }
    TraceReader reader(path_);
    TraceRecord rec;
    EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST_F(TraceIoTest, MissingFileFatals)
{
    EXPECT_THROW(TraceReader("/nonexistent/path/to/trace"),
                 std::runtime_error);
}

TEST_F(TraceIoTest, EmptyTraceReadsEmpty)
{
    {
        TraceWriter writer(path_, TraceFormat::Binary);
    }
    EXPECT_TRUE(TraceReader::readAll(path_).empty());
}

TEST_F(TraceIoTest, StreamingReadMatchesReadAll)
{
    {
        TraceWriter writer(path_, TraceFormat::Binary);
        for (Tick t = 0; t < 100; ++t)
            writer.append({t, t * 64, t % 3 == 0});
    }
    TraceReader reader(path_);
    TraceRecord rec;
    std::vector<TraceRecord> streamed;
    while (reader.next(rec))
        streamed.push_back(rec);
    EXPECT_EQ(streamed, TraceReader::readAll(path_));
    EXPECT_EQ(streamed.size(), 100u);
}

#include "harness/experiment.hh"
#include "test_config.hh"
#include "trace/workload_model.hh"

TEST_F(TraceIoTest, RecordedWorkloadReplaysDeterministically)
{
    using namespace smartref;
    // Record a workload's stream, replay it twice: identical outcomes.
    const DramConfig dram = tcfg::tinyConfig();
    {
        EventQueue eq;
        StatGroup root("rec");
        TraceWriter writer(path_, TraceFormat::Binary);
        WorkloadParams wp;
        wp.footprintRows = dram.org.totalRows() / 2;
        wp.rowVisitsPerSecond = 1e6;
        wp.seed = 77;
        WorkloadModel model(
            wp, dram.org.rowBytes(),
            [&](Addr a, bool w) { writer.append({eq.now(), a, w}); }, eq,
            &root);
        model.start();
        eq.runUntil(2 * dram.timing.retention);
    }

    auto replay = [&] {
        SystemConfig cfg;
        cfg.dram = dram;
        cfg.policy = PolicyKind::Smart;
        cfg.smart.autoReconfigure = false;
        System sys(cfg);
        TraceReader reader(path_);
        TraceRecord rec;
        Tick last = 0;
        while (reader.next(rec)) {
            if (rec.tick > last) {
                sys.run(rec.tick - last);
                last = rec.tick;
            }
            sys.controller().access(rec.addr, rec.write);
        }
        sys.run(dram.timing.retention);
        EXPECT_EQ(sys.dram().retention().violations(), 0u);
        return sys.dram().totalRefreshes();
    };
    const auto a = replay();
    const auto b = replay();
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0u);
}

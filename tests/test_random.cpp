#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/random.hh"

using namespace smartref;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1048576ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowRoughlyUniform)
{
    Rng rng(13);
    const int buckets = 10, samples = 100000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < samples; ++i)
        ++counts[rng.nextBelow(buckets)];
    for (int c : counts) {
        EXPECT_GT(c, samples / buckets * 0.9);
        EXPECT_LT(c, samples / buckets * 1.1);
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(17);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.nextRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        sawLo |= (v == 5);
        sawHi |= (v == 9);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(23);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng rng(29);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Zipf, UniformWhenAlphaZero)
{
    Rng rng(37);
    ZipfSampler z(16, 0.0);
    std::vector<int> counts(16, 0);
    const int n = 64000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 16, n / 16 * 0.2);
}

class ZipfSkewTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkewTest, SamplesStayInRangeAndSkewTowardHead)
{
    const double alpha = GetParam();
    Rng rng(41);
    const std::uint64_t n = 1000;
    ZipfSampler z(n, alpha);
    std::uint64_t headHits = 0;
    const int samples = 50000;
    for (int i = 0; i < samples; ++i) {
        const std::uint64_t v = z.sample(rng);
        ASSERT_LT(v, n);
        headHits += (v < n / 10);
    }
    // Any positive alpha must over-represent the first decile.
    EXPECT_GT(static_cast<double>(headHits) / samples, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfSkewTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2));

TEST(Zipf, HigherAlphaMoreSkew)
{
    Rng r1(43), r2(43);
    ZipfSampler low(1000, 0.5), high(1000, 1.2);
    std::uint64_t lowHead = 0, highHead = 0;
    for (int i = 0; i < 50000; ++i) {
        lowHead += (low.sample(r1) < 10);
        highHead += (high.sample(r2) < 10);
    }
    EXPECT_GT(highHead, lowHead);
}

TEST(Zipf, SingleElementPopulation)
{
    Rng rng(47);
    ZipfSampler z(1, 1.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(rng), 0u);
}

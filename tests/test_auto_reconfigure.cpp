/**
 * @file
 * Section 4.6 self-configuration: falling back to CBR under near-idle
 * traffic, re-enabling under load, and — crucially — never violating a
 * retention deadline across either transition (the overlap argument).
 */

#include <gtest/gtest.h>

#include "core/smart_refresh.hh"
#include "ctrl/memory_controller.hh"
#include "sim/random.hh"
#include <cmath>

#include "test_config.hh"

using namespace smartref;

namespace {

struct AutoRig
{
    explicit AutoRig(const DramConfig &cfg = tcfg::tinyConfig())
        : config(cfg), root("root"), dram(cfg, eq, &root),
          ctrl(dram, eq, ControllerConfig{}, &root),
          policy(cfg, makeConfig(), eq, &root)
    {
        ctrl.setRefreshPolicy(&policy);
    }

    static SmartRefreshConfig
    makeConfig()
    {
        SmartRefreshConfig sc;
        sc.autoReconfigure = true;
        return sc;
    }

    Addr
    addrOf(std::uint64_t blockRow) const
    {
        return blockRow * config.org.rowBytes();
    }

    /**
     * Schedule traffic touching `fraction` of rows per interval. Rows
     * are picked round-robin so the number of *distinct* activations
     * per window is deterministic (the monitor counts activations).
     */
    void
    trafficPhase(double fraction, Tick from, Tick until,
                 std::uint64_t seed = 5)
    {
        auto rng = std::make_shared<Rng>(seed);
        auto nextRow = std::make_shared<std::uint64_t>(0);
        const std::uint64_t totalRows = config.org.totalRows();
        const auto touches = static_cast<std::uint64_t>(
            std::ceil(fraction * static_cast<double>(totalRows)));
        const Tick interval = config.timing.retention;
        for (Tick t = from; t < until; t += interval) {
            for (std::uint64_t i = 0; i < touches; ++i) {
                eq.schedule(t + rng->nextBelow(interval),
                            [this, rng, nextRow, totalRows] {
                    ctrl.access(addrOf((*nextRow)++ % totalRows), false);
                });
            }
        }
    }

    DramConfig config;
    EventQueue eq;
    StatGroup root;
    DramModule dram;
    MemoryController ctrl;
    SmartRefreshPolicy policy;
};

} // namespace

TEST(AutoReconfigure, IdleTrafficFallsBackToCbr)
{
    AutoRig rig;
    const Tick retention = rig.config.timing.retention;
    // Essentially no traffic: after a window + overlap the policy must
    // sit in CBR mode with the counters off.
    rig.eq.runUntil(4 * retention);
    EXPECT_EQ(rig.policy.mode(), SmartRefreshPolicy::Mode::Cbr);
    EXPECT_FALSE(rig.policy.countersActive());
    EXPECT_TRUE(rig.policy.cbrActive());
    EXPECT_GE(rig.policy.monitor().switchesToCbr(), 1u);
    EXPECT_EQ(rig.dram.retention().violations(), 0u);
    EXPECT_EQ(rig.dram.retention().finalCheck(rig.eq.now()), 0u);
}

TEST(AutoReconfigure, ActivityReenablesSmart)
{
    AutoRig rig;
    const Tick retention = rig.config.timing.retention;
    // Idle for 4 intervals (drops to CBR), then busy for 6.
    rig.trafficPhase(0.5, 4 * retention, 10 * retention);
    rig.eq.runUntil(10 * retention);
    EXPECT_EQ(rig.policy.mode(), SmartRefreshPolicy::Mode::Smart);
    EXPECT_TRUE(rig.policy.countersActive());
    EXPECT_FALSE(rig.policy.cbrActive());
    EXPECT_GE(rig.policy.monitor().switchesToSmart(), 1u);
    EXPECT_EQ(rig.dram.retention().violations(), 0u);
}

TEST(AutoReconfigure, TransitionsNeverViolateRetention)
{
    // Alternate idle and busy phases to force repeated transitions in
    // both directions; the overlap must keep every deadline.
    AutoRig rig;
    const Tick retention = rig.config.timing.retention;
    for (int cycle = 0; cycle < 3; ++cycle) {
        const Tick busyStart = (6 * cycle + 3) * retention;
        rig.trafficPhase(0.5, busyStart, busyStart + 3 * retention,
                         100 + cycle);
    }
    rig.eq.runUntil(20 * retention);
    EXPECT_EQ(rig.dram.retention().violations(), 0u);
    EXPECT_EQ(rig.dram.retention().finalCheck(rig.eq.now()), 0u);
    EXPECT_GE(rig.policy.monitor().switchesToCbr(), 2u);
    EXPECT_GE(rig.policy.monitor().switchesToSmart(), 1u);
}

TEST(AutoReconfigure, OverlapRunsBothMechanisms)
{
    AutoRig rig;
    const Tick retention = rig.config.timing.retention;
    // First window closes at 1 interval with no traffic: transition to
    // DisableOverlap, during which both counters and CBR run.
    rig.eq.runUntil(retention + retention / 2);
    EXPECT_EQ(rig.policy.mode(),
              SmartRefreshPolicy::Mode::DisableOverlap);
    EXPECT_TRUE(rig.policy.countersActive());
    EXPECT_TRUE(rig.policy.cbrActive());
    // Overlap refreshes cost extra: more refreshes than a single
    // mechanism would issue in that window.
    EXPECT_GT(rig.policy.cbrRefreshesRequested(), 0u);
    EXPECT_GT(rig.policy.smartRefreshesRequested(), 0u);
}

TEST(AutoReconfigure, CbrModeStopsCounterTraffic)
{
    AutoRig rig;
    const Tick retention = rig.config.timing.retention;
    rig.eq.runUntil(4 * retention);
    ASSERT_EQ(rig.policy.mode(), SmartRefreshPolicy::Mode::Cbr);
    const std::uint64_t reads = rig.policy.counters().sramReads();
    rig.eq.runUntil(6 * retention);
    // No counter walk while disabled: SRAM reads frozen.
    EXPECT_EQ(rig.policy.counters().sramReads(), reads);
}

TEST(AutoReconfigure, LightTrafficInHysteresisBandKeepsMode)
{
    AutoRig rig;
    const Tick retention = rig.config.timing.retention;
    // ~1.5 % of rows per interval: between the 1 % and 2 % thresholds,
    // so the initial Smart mode sticks.
    rig.trafficPhase(0.015, 0, 6 * retention);
    rig.eq.runUntil(6 * retention);
    EXPECT_EQ(rig.policy.mode(), SmartRefreshPolicy::Mode::Smart);
    EXPECT_EQ(rig.policy.monitor().switchesToCbr(), 0u);
}

TEST(AutoReconfigure, DisabledMonitorNeverSwitches)
{
    DramConfig cfg = tcfg::tinyConfig();
    EventQueue eq;
    StatGroup root("root");
    DramModule dram(cfg, eq, &root);
    MemoryController ctrl(dram, eq, ControllerConfig{}, &root);
    SmartRefreshConfig sc;
    sc.autoReconfigure = false;
    SmartRefreshPolicy policy(cfg, sc, eq, &root);
    ctrl.setRefreshPolicy(&policy);
    eq.runUntil(6 * cfg.timing.retention);
    EXPECT_EQ(policy.mode(), SmartRefreshPolicy::Mode::Smart);
    EXPECT_EQ(policy.monitor().switchesToCbr(), 0u);
}

#include <gtest/gtest.h>

#include "ctrl/burst_refresh.hh"
#include "ctrl/cbr_refresh.hh"
#include "ctrl/ras_only_refresh.hh"
#include "ctrl/memory_controller.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

struct PolicyRig
{
    explicit PolicyRig(const DramConfig &cfg = tcfg::tinyConfig())
        : root("root"), dram(cfg, eq, &root),
          ctrl(dram, eq, ControllerConfig{}, &root)
    {
    }

    EventQueue eq;
    StatGroup root;
    DramModule dram;
    MemoryController ctrl;
};

} // namespace

TEST(CbrPolicy, BaselineRateMatchesGeometry)
{
    PolicyRig rig;
    CbrRefreshPolicy policy(rig.eq, &rig.root);
    rig.ctrl.setRefreshPolicy(&policy);

    const Tick retention = rig.dram.config().timing.retention;
    rig.eq.runUntil(retention);
    // Exactly every (rank, bank, row) refreshed once per interval.
    EXPECT_EQ(rig.dram.totalRefreshes(),
              rig.dram.config().org.totalRows());
    EXPECT_EQ(rig.dram.retention().finalCheck(rig.eq.now()), 0u);
}

TEST(CbrPolicy, SteadyStateKeepsRetention)
{
    PolicyRig rig;
    CbrRefreshPolicy policy(rig.eq, &rig.root);
    rig.ctrl.setRefreshPolicy(&policy);

    rig.eq.runUntil(5 * rig.dram.config().timing.retention);
    EXPECT_EQ(rig.dram.retention().violations(), 0u);
    EXPECT_EQ(rig.dram.retention().finalCheck(rig.eq.now()), 0u);
    EXPECT_EQ(rig.dram.totalRefreshes(),
              5u * rig.dram.config().org.totalRows());
}

TEST(CbrPolicy, RefreshAgesNearRetention)
{
    PolicyRig rig;
    CbrRefreshPolicy policy(rig.eq, &rig.root);
    rig.ctrl.setRefreshPolicy(&policy);
    rig.eq.runUntil(3 * rig.dram.config().timing.retention);
    // Steady-state CBR is the 100 %-optimal scheme: every refresh lands
    // at almost exactly the retention interval.
    const double optimality = rig.dram.retention().measuredOptimality();
    EXPECT_GT(optimality, 0.60); // first-interval ramp lowers the mean
}

TEST(RasOnlyPolicy, CoversAllRowsAndChargesBus)
{
    PolicyRig rig;
    RasOnlyRefreshPolicy policy(rig.eq, BusEnergyParams{}, &rig.root);
    rig.ctrl.setRefreshPolicy(&policy);

    const Tick retention = rig.dram.config().timing.retention;
    rig.eq.runUntil(retention);
    const std::uint64_t total = rig.dram.config().org.totalRows();
    EXPECT_EQ(rig.dram.rasOnlyRefreshes(), total);
    EXPECT_EQ(policy.bus().accesses(), total);
    const double expected = policy.bus().energyPerAccess() *
                            static_cast<double>(total);
    EXPECT_NEAR(policy.overheadEnergy(), expected, expected * 1e-9);
    EXPECT_EQ(rig.dram.retention().finalCheck(rig.eq.now()), 0u);
}

TEST(RasOnlyPolicy, SameDeviceEnergyAsCbrPlusBus)
{
    PolicyRig cbrRig, rasRig;
    CbrRefreshPolicy cbr(cbrRig.eq, &cbrRig.root);
    RasOnlyRefreshPolicy ras(rasRig.eq, BusEnergyParams{}, &rasRig.root);
    cbrRig.ctrl.setRefreshPolicy(&cbr);
    rasRig.ctrl.setRefreshPolicy(&ras);

    const Tick retention = cbrRig.dram.config().timing.retention;
    cbrRig.eq.runUntil(retention);
    rasRig.eq.runUntil(retention);
    cbrRig.dram.finalize();
    rasRig.dram.finalize();

    // Device-side refresh energy identical; RAS-only adds bus energy.
    EXPECT_NEAR(cbrRig.dram.power().refreshEnergy(),
                rasRig.dram.power().refreshEnergy(),
                cbrRig.dram.power().refreshEnergy() * 0.01);
    EXPECT_GT(ras.overheadEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(cbr.overheadEnergy(), 0.0);
}

TEST(BurstPolicy, RefreshesEverythingInOneBurst)
{
    PolicyRig rig;
    BurstRefreshPolicy policy(rig.eq, &rig.root);
    rig.ctrl.setRefreshPolicy(&policy);

    const Tick retention = rig.dram.config().timing.retention;
    const std::uint64_t total = rig.dram.config().org.totalRows();

    // Just before the burst fires: nothing refreshed yet.
    rig.eq.runUntil(retention - kMicrosecond);
    EXPECT_EQ(rig.dram.totalRefreshes(), 0u);

    // The burst enqueues everything at once: the backlog spikes to the
    // full row count — the behaviour the paper calls undesirable.
    rig.eq.runUntil(retention + kMicrosecond);
    EXPECT_GE(rig.ctrl.maxRefreshBacklog(), total / 2);

    rig.eq.runUntil(retention + retention / 4);
    EXPECT_EQ(rig.dram.totalRefreshes(), total);
}

TEST(BurstPolicy, StillMeetsRetention)
{
    PolicyRig rig;
    BurstRefreshPolicy policy(rig.eq, &rig.root);
    rig.ctrl.setRefreshPolicy(&policy);
    rig.eq.runUntil(3 * rig.dram.config().timing.retention +
                    rig.dram.config().timing.retention / 8);
    EXPECT_EQ(rig.dram.retention().violations(), 0u);
}

TEST(PolicyNames, AreStable)
{
    PolicyRig rig;
    CbrRefreshPolicy cbr(rig.eq, &rig.root);
    BurstRefreshPolicy burst(rig.eq, &rig.root);
    RasOnlyRefreshPolicy ras(rig.eq, BusEnergyParams{}, &rig.root);
    EXPECT_EQ(cbr.policyName(), "cbr");
    EXPECT_EQ(burst.policyName(), "burst");
    EXPECT_EQ(ras.policyName(), "ras-only");
}

TEST(PolicyStart, RequiresBinding)
{
    PolicyRig rig;
    CbrRefreshPolicy policy(rig.eq, &rig.root);
    EXPECT_THROW(policy.start(), std::logic_error);
}

#include <gtest/gtest.h>

#include <set>

#include "trace/address_pattern.hh"

using namespace smartref;

namespace {

WorkloadParams
baseParams()
{
    WorkloadParams wp;
    wp.footprintRows = 16;
    wp.accessesPerVisit = 4;
    wp.randomJumpProb = 0.0;
    wp.readFraction = 1.0;
    wp.seed = 3;
    return wp;
}

constexpr std::uint64_t kRowBytes = 1024;

} // namespace

TEST(AddressPattern, RunsStayWithinOneRow)
{
    AddressPattern p(baseParams(), kRowBytes);
    for (int visit = 0; visit < 10; ++visit) {
        const auto first = p.next();
        EXPECT_TRUE(first.startsNewRow);
        const std::uint64_t row = first.addr / kRowBytes;
        for (std::uint32_t i = 1; i < 4; ++i) {
            const auto a = p.next();
            EXPECT_FALSE(a.startsNewRow);
            EXPECT_EQ(a.addr / kRowBytes, row);
        }
    }
}

TEST(AddressPattern, SweepCoversFootprint)
{
    AddressPattern p(baseParams(), kRowBytes);
    std::set<std::uint64_t> rows;
    for (int i = 0; i < 16 * 4; ++i)
        rows.insert(p.next().addr / kRowBytes);
    EXPECT_EQ(rows.size(), 16u);
}

TEST(AddressPattern, DeterministicPerSeed)
{
    AddressPattern a(baseParams(), kRowBytes);
    AddressPattern b(baseParams(), kRowBytes);
    for (int i = 0; i < 1000; ++i) {
        const auto x = a.next();
        const auto y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.write, y.write);
    }
}

TEST(AddressPattern, ReadFractionHonoured)
{
    WorkloadParams wp = baseParams();
    wp.readFraction = 0.25;
    AddressPattern p(wp, kRowBytes);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += p.next().write;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.75, 0.02);
}

TEST(AddressPattern, StrideOffsetInterleaving)
{
    WorkloadParams wp = baseParams();
    wp.rowStride = 2;
    wp.rowOffset = 1;
    AddressPattern p(wp, kRowBytes);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ((p.next().addr / kRowBytes) % 2, 1u);
}

TEST(AddressPattern, CountsVisitsAndAccesses)
{
    AddressPattern p(baseParams(), kRowBytes);
    for (int i = 0; i < 40; ++i)
        p.next();
    EXPECT_EQ(p.accessesGenerated(), 40u);
    EXPECT_EQ(p.rowVisits(), 10u);
}

TEST(AddressPattern, ZipfJumpsStayInFootprint)
{
    WorkloadParams wp = baseParams();
    wp.randomJumpProb = 1.0;
    wp.zipfAlpha = 1.1;
    AddressPattern p(wp, kRowBytes);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(p.next().addr / kRowBytes, 16u);
}

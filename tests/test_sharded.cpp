/**
 * @file
 * Per-channel event-engine sharding (harness/sharded.hh).
 *
 * The determinism contract under test: a ShardedSystem's merged
 * outputs — energy snapshot, heatmap, ledger, audit trail — are
 * byte-identical for any shard worker count, a single-channel shard
 * is indistinguishable from a plain System, and a server-scale sparse
 * configuration constructs without materialising counter storage.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/counter_array.hh"
#include "ctrl/refresh_audit.hh"
#include "ctrl/refresh_heatmap.hh"
#include "dram/energy_ledger.hh"
#include "harness/experiment.hh"
#include "harness/sharded.hh"
#include "trace/benchmark_profiles.hh"

using namespace smartref;

namespace {

SystemConfig
makeConfig(const std::string &preset, std::uint32_t channels)
{
    SystemConfig cfg;
    cfg.dram = dramConfigByName(preset);
    if (channels)
        cfg.dram.channels = channels;
    cfg.policy = PolicyKind::Smart;
    cfg.smart.counterBits = 3;
    cfg.smart.segments = 8;
    cfg.smart.queueCapacity = 8;
    return cfg;
}

void
addChannelWorkloads(ShardedSystem &sys, const DramConfig &dram,
                    std::uint64_t baseSeed)
{
    DramConfig chDram = dram;
    chDram.channels = 1;
    const BenchmarkProfile &profile = findProfile("mummer");
    for (std::uint32_t c = 0; c < dram.channels; ++c) {
        for (const auto &wp : conventionalParams(
                 profile, chDram, 1.0, shardChannelSeed(baseSeed, c)))
            sys.channel(c).addWorkload(wp);
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(ShardChannelSeed, DeterministicAndDistinct)
{
    std::set<std::uint64_t> seeds;
    for (std::uint32_t c = 0; c < 16; ++c) {
        const std::uint64_t s = shardChannelSeed(42, c);
        EXPECT_EQ(s, shardChannelSeed(42, c));
        seeds.insert(s);
        // A channel's stream must not collapse onto the base seed.
        EXPECT_NE(s, 42u);
    }
    EXPECT_EQ(seeds.size(), 16u);
    EXPECT_NE(shardChannelSeed(42, 0), shardChannelSeed(43, 0));
}

TEST(ShardedSystem, SingleChannelMatchesPlainSystem)
{
    const SystemConfig cfg = makeConfig("2gb", 0);
    ASSERT_EQ(cfg.dram.channels, 1u);

    ShardedSystem sharded(cfg, 1);
    addChannelWorkloads(sharded, cfg.dram, 42);
    sharded.run(6 * kMillisecond);
    const EnergySnapshot a = sharded.captureMergedSnapshot();

    System plain(cfg);
    const BenchmarkProfile &profile = findProfile("mummer");
    for (const auto &wp : conventionalParams(profile, cfg.dram, 1.0,
                                             shardChannelSeed(42, 0)))
        plain.addWorkload(wp);
    plain.run(6 * kMillisecond);
    const EnergySnapshot b = captureSnapshot(plain);

    EXPECT_EQ(a.tick, b.tick);
    EXPECT_EQ(a.refreshes, b.refreshes);
    EXPECT_EQ(a.demandAccesses, b.demandAccesses);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.refreshEnergy, b.refreshEnergy);
    EXPECT_EQ(a.actEnergy, b.actEnergy);
    EXPECT_EQ(a.readEnergy, b.readEnergy);
    EXPECT_EQ(a.writeEnergy, b.writeEnergy);
    EXPECT_EQ(a.backgroundEnergy, b.backgroundEnergy);
    EXPECT_EQ(a.latencySumTicks, b.latencySumTicks);
    EXPECT_EQ(a.demandBlockedTicks, b.demandBlockedTicks);
}

TEST(ShardedSystem, EpochSlicingDoesNotChangeResults)
{
    // Running to T in epoch slices must equal one run to T: compare a
    // long-epoch (single-slice) run against the default 4 ms epochs.
    SystemConfig cfg = makeConfig("2gb", 2);
    ShardedSystem sliced(cfg, 1);
    addChannelWorkloads(sliced, cfg.dram, 42);
    sliced.run(10 * kMillisecond);

    ShardedSystem whole(cfg, 1, 10 * kMillisecond);
    addChannelWorkloads(whole, cfg.dram, 42);
    whole.run(10 * kMillisecond);

    EXPECT_EQ(sliced.now(), whole.now());
    EXPECT_EQ(sliced.eventsExecuted(), whole.eventsExecuted());
    const EnergySnapshot a = sliced.captureMergedSnapshot();
    const EnergySnapshot b = whole.captureMergedSnapshot();
    EXPECT_EQ(a.refreshes, b.refreshes);
    EXPECT_EQ(a.demandAccesses, b.demandAccesses);
    // Energies accrue at epoch boundaries, so a different slicing may
    // reassociate the floating-point sums; everything discrete is
    // identical and the energy agrees to rounding.
    EXPECT_NEAR(a.totalEnergy(), b.totalEnergy(),
                1e-12 * b.totalEnergy());
}

TEST(ShardedSystem, MergedOutputsByteIdenticalAcrossShardJobs)
{
    // The full merged-observer surface at -j1 vs -j4 on a 2-channel
    // module: snapshot fields, heatmap JSON, ledger JSON and the
    // k-way-merged audit NDJSON must all be byte-identical.
    struct Outputs
    {
        EnergySnapshot snap;
        std::uint64_t events = 0;
        std::string heatmapJson;
        std::string ledgerJson;
        std::string auditNdjson;
    };
    auto runAt = [](unsigned shardJobs) {
        SystemConfig cfg = makeConfig("2gb", 2);
        const DramOrganization &org = cfg.dram.org;
        RefreshHeatmap heatmap(org.ranks, org.banks, 8,
                               (1u << 3) - 1);
        RefreshAudit audit(
            RefreshAudit::Shape{org.ranks, org.banks, org.rows});
        EnergyLedger ledger(
            EnergyLedger::Shape{cfg.dram.channels * org.ranks,
                                org.banks});
        cfg.heatmap = &heatmap;
        cfg.audit = &audit;
        cfg.ledger = &ledger;

        ShardedSystem sys(cfg, shardJobs);
        addChannelWorkloads(sys, cfg.dram, 42);
        sys.run(6 * kMillisecond);

        Outputs out;
        out.snap = sys.captureMergedSnapshot();
        out.events = sys.eventsExecuted();
        sys.mergeObservers();
        std::ostringstream hm;
        heatmap.writeJson(hm);
        out.heatmapJson = hm.str();
        std::ostringstream lj;
        ledger.writeJson(lj, "{}");
        out.ledgerJson = lj.str();
        const std::string path = ::testing::TempDir() + "/audit_j" +
                                 std::to_string(shardJobs) + ".ndjson";
        audit.writeNdjson(path);
        out.auditNdjson = slurp(path);
        return out;
    };

    const Outputs a = runAt(1);
    const Outputs b = runAt(4);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.snap.tick, b.snap.tick);
    EXPECT_EQ(a.snap.refreshes, b.snap.refreshes);
    EXPECT_EQ(a.snap.demandAccesses, b.snap.demandAccesses);
    EXPECT_EQ(a.snap.totalEnergy(), b.snap.totalEnergy());
    EXPECT_EQ(a.heatmapJson, b.heatmapJson);
    EXPECT_EQ(a.ledgerJson, b.ledgerJson);
    EXPECT_FALSE(a.auditNdjson.empty());
    EXPECT_EQ(a.auditNdjson, b.auditNdjson);
    // Two channels were merged, so the trail must carry channel ids.
    EXPECT_NE(a.auditNdjson.find("\"channel\":1"), std::string::npos);
}

TEST(ShardedSystem, ServerConfigConstructsLazily)
{
    // A multi-hundred-GB module with sparse counters must construct
    // without materialising any counter storage, and an idle epoch of
    // pure pristine walking must keep it that way. (The 512 GB preset
    // and the absolute RSS ceiling are exercised by
    // bench/micro_channel_scale in the server-smoke CI job; the unit
    // test uses 256 GB to stay light under the sanitizer builds.)
    SystemConfig cfg = makeConfig("256gb", 0);
    ASSERT_GT(cfg.dram.channels, 1u);
    cfg.smart.autoReconfigure = false;
    cfg.smart.sparseCounters = true;

    {
        ShardedSystem sys(cfg, 2);
        EXPECT_EQ(sys.residentCounterBytes(), 0u);
        sys.run(4 * kMillisecond);
        EXPECT_EQ(sys.now(), 4 * kMillisecond);
        // No demand traffic: the walk runs entirely on the pristine
        // closed form and allocates nothing.
        EXPECT_EQ(sys.residentCounterBytes(), 0u);
    }

    // A near-idle workload on one channel materialises only the few
    // chunks its footprint lands in, and nothing on other channels.
    ShardedSystem sys(cfg, 2);
    DramConfig chDram = cfg.dram;
    chDram.channels = 1;
    sys.channel(0).addWorkload(idleParams(chDram,
                                          shardChannelSeed(42, 0)));
    sys.run(4 * kMillisecond);
    EXPECT_GT(sys.residentCounterBytes(), 0u);
    const std::uint64_t chunkBytes =
        CounterArray::kDefaultChunkPositions * cfg.smart.segments;
    EXPECT_LE(sys.residentCounterBytes(), 8 * chunkBytes);
}

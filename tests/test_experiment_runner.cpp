/**
 * @file
 * Smoke tests for the experiment pipeline the bench binaries build on:
 * full-size configurations with shortened windows, checking that the
 * calibration anchors hold end-to-end.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace smartref;

namespace {

ExperimentOptions
quickOpts()
{
    ExperimentOptions opts;
    // One retention interval of warmup is required for the stagger
    // transient; measure half an interval beyond to keep this fast.
    opts.warmup = 64 * kMillisecond;
    opts.measure = 64 * kMillisecond;
    return opts;
}

} // namespace

TEST(ExperimentRunner, ConventionalBaselineAnchor)
{
    const RunResult r = runConventional(findProfile("fasta"), ddr2_2GB(),
                                        PolicyKind::Cbr, quickOpts());
    EXPECT_NEAR(r.refreshesPerSec, 2048000.0, 2048000.0 * 0.002);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_GT(r.totalEnergyJ, 0.0);
    EXPECT_EQ(r.policy, "cbr");
}

TEST(ExperimentRunner, ConventionalComparisonHitsCalibration)
{
    const ComparisonResult c = compareConventional(
        findProfile("fasta"), ddr2_2GB(), quickOpts());
    // fasta's calibration target is a 26 % reduction.
    EXPECT_NEAR(c.refreshReduction(), 0.26, 0.05);
    EXPECT_GT(c.refreshEnergySaving(), 0.10);
    EXPECT_GT(c.totalEnergySaving(), 0.0);
    EXPECT_EQ(c.baseline.violations, 0u);
    EXPECT_EQ(c.smart.violations, 0u);
}

TEST(ExperimentRunner, ThreeDBaselineAnchor)
{
    const RunResult r = runThreeD(findProfile("fasta"), dram3d_64MB(),
                                  PolicyKind::Cbr, quickOpts());
    EXPECT_NEAR(r.refreshesPerSec, 1024000.0, 1024000.0 * 0.002);
    EXPECT_EQ(r.violations, 0u);
}

TEST(ExperimentRunner, ThreeDComparisonHitsCalibration)
{
    const ComparisonResult c =
        compareThreeD(findProfile("mummer"), dram3d_64MB(), quickOpts());
    // mummer's 3D calibration target is a 42 % reduction.
    EXPECT_NEAR(c.refreshReduction(), 0.42, 0.06);
    EXPECT_EQ(c.smart.violations, 0u);
}

TEST(ExperimentRunner, ThirtyTwoMsDoublesThreeDBaseline)
{
    const RunResult r = runThreeD(findProfile("fasta"),
                                  dram3d_64MB_32ms(), PolicyKind::Cbr,
                                  quickOpts());
    EXPECT_NEAR(r.refreshesPerSec, 2048000.0, 2048000.0 * 0.002);
}

TEST(ExperimentRunner, FourGBBaselineAnchor)
{
    const RunResult r = runConventional(findProfile("fasta"), ddr2_4GB(),
                                        PolicyKind::Cbr, quickOpts(),
                                        kFourGBRowScale);
    EXPECT_NEAR(r.refreshesPerSec, 4096000.0, 4096000.0 * 0.002);
    EXPECT_EQ(r.violations, 0u);
}

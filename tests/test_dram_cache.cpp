#include <gtest/gtest.h>

#include "cache/dram_cache.hh"
#include "ctrl/cbr_refresh.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

/** A 3D-cache rig: tiny stacked module in front of a small main one. */
struct CacheRig
{
    CacheRig()
        : root("root"),
          threeD(makeThreeD(), eq, &root),
          mainMem(tcfg::smallConfig(), eq, &root),
          threeDCtrl(threeD, eq, ControllerConfig{}, &root),
          mainCtrl(mainMem, eq, ControllerConfig{}, &root),
          threeDPolicy(eq, &root),
          mainPolicy(eq, &root),
          cache(threeDCtrl, mainCtrl, DramCacheConfig{}, eq, &root)
    {
        threeDCtrl.setRefreshPolicy(&threeDPolicy);
        mainCtrl.setRefreshPolicy(&mainPolicy);
    }

    static DramConfig
    makeThreeD()
    {
        DramConfig c = tcfg::tinyConfig();
        c.name = "tiny3d";
        c.allowPowerDown = false;
        // Die-to-die vias: the stacked array is faster than the DIMM.
        c.timing.tRCD = 9 * kNanosecond;
        c.timing.tCL = 9 * kNanosecond;
        c.timing.tRP = 9 * kNanosecond;
        c.timing.tRAS = 27 * kNanosecond;
        c.timing.tRC = 36 * kNanosecond;
        return c;
    }

    EventQueue eq;
    StatGroup root;
    DramModule threeD;
    DramModule mainMem;
    MemoryController threeDCtrl;
    MemoryController mainCtrl;
    CbrRefreshPolicy threeDPolicy;
    CbrRefreshPolicy mainPolicy;
    DramCache cache;
};

} // namespace

TEST(DramCache, GeometryFromModule)
{
    CacheRig rig;
    // tiny: 2 banks x 64 rows x 64 cols x 8 B = 64 KiB; 64 B lines.
    EXPECT_EQ(rig.cache.numLines(), 1024u);
}

TEST(DramCache, ColdMissFetchesFromMainAndFills)
{
    CacheRig rig;
    rig.cache.access(0x100, false);
    rig.eq.runUntil(10 * kMicrosecond);
    EXPECT_EQ(rig.cache.misses(), 1u);
    EXPECT_EQ(rig.cache.hits(), 0u);
    // Main memory served the demand; the 3D module got the fill write.
    EXPECT_GE(rig.mainMem.reads(), 1u);
    EXPECT_GE(rig.threeD.writes(), 1u);
}

TEST(DramCache, SecondAccessHitsInStackedDram)
{
    CacheRig rig;
    rig.cache.access(0x100, false);
    rig.eq.runUntil(10 * kMicrosecond);
    const auto mainReadsBefore = rig.mainMem.reads();
    rig.cache.access(0x100, false);
    rig.eq.runUntil(20 * kMicrosecond);
    EXPECT_EQ(rig.cache.hits(), 1u);
    EXPECT_EQ(rig.mainMem.reads(), mainReadsBefore); // no new main read
    EXPECT_GE(rig.threeD.reads(), 1u);               // served by 3D
}

TEST(DramCache, ConflictingLineEvicts)
{
    CacheRig rig;
    const Addr stride = 64ull * rig.cache.numLines();
    rig.cache.access(0, true); // dirty line
    rig.eq.runUntil(10 * kMicrosecond);
    rig.cache.access(stride, false); // same index, different tag
    rig.eq.runUntil(20 * kMicrosecond);
    EXPECT_EQ(rig.cache.misses(), 2u);
    EXPECT_EQ(rig.cache.writebacks(), 1u);
    // The dirty victim went back to main memory.
    EXPECT_GE(rig.mainMem.writes(), 1u);
}

TEST(DramCache, CleanEvictionSkipsWriteback)
{
    CacheRig rig;
    const Addr stride = 64ull * rig.cache.numLines();
    rig.cache.access(0, false);
    rig.eq.runUntil(10 * kMicrosecond);
    rig.cache.access(stride, false);
    rig.eq.runUntil(20 * kMicrosecond);
    EXPECT_EQ(rig.cache.writebacks(), 0u);
}

TEST(DramCache, LatencyHitLowerThanMiss)
{
    CacheRig rig;
    Tick missDone = 0, hitDone = 0;
    const Tick start = rig.eq.now();
    rig.cache.access(0x200, false,
                     [&](const MemRequest &, Tick d) { missDone = d; });
    rig.eq.runUntil(50 * kMicrosecond);
    const Tick hitStart = rig.eq.now();
    rig.cache.access(0x200, false,
                     [&](const MemRequest &, Tick d) { hitDone = d; });
    rig.eq.runUntil(100 * kMicrosecond);
    EXPECT_GT(missDone - start, hitDone - hitStart);
    EXPECT_EQ(rig.cache.demandAccesses(), 2u);
    EXPECT_GT(rig.cache.avgLatency(), 0.0);
}

TEST(DramCache, WriteHitDirtiesLine)
{
    CacheRig rig;
    const Addr stride = 64ull * rig.cache.numLines();
    rig.cache.access(0x40, false); // clean fill
    rig.eq.runUntil(10 * kMicrosecond);
    rig.cache.access(0x40, true); // dirty on hit
    rig.eq.runUntil(20 * kMicrosecond);
    rig.cache.access(0x40 + stride, false); // evict
    rig.eq.runUntil(30 * kMicrosecond);
    EXPECT_EQ(rig.cache.writebacks(), 1u);
}

TEST(DramCache, TagEnergyAccumulates)
{
    CacheRig rig;
    rig.cache.access(0, false);
    rig.cache.access(64, false);
    EXPECT_GT(rig.cache.tagEnergy(), 0.0);
}

TEST(DramCache, HitRateConvergesForResidentSet)
{
    CacheRig rig;
    // Touch 32 lines repeatedly; after the first sweep everything hits.
    for (int pass = 0; pass < 4; ++pass) {
        for (Addr line = 0; line < 32; ++line) {
            rig.eq.scheduleAfter(kMicrosecond, [&rig, line] {
                rig.cache.access(line * 64, false);
            });
            rig.eq.runUntil(rig.eq.now() + 2 * kMicrosecond);
        }
    }
    rig.eq.runUntil(rig.eq.now() + 100 * kMicrosecond);
    EXPECT_EQ(rig.cache.misses(), 32u);
    EXPECT_EQ(rig.cache.hits(), 3u * 32u);
}

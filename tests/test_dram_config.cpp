#include <gtest/gtest.h>

#include <stdexcept>

#include "dram/dram_config.hh"
#include "test_config.hh"

using namespace smartref;

TEST(DramConfig, Table1TwoGigabyte)
{
    const DramConfig c = ddr2_2GB();
    EXPECT_EQ(c.org.capacityBytes(), 2 * kGiB);
    EXPECT_EQ(c.org.ranks, 2u);
    EXPECT_EQ(c.org.banks, 4u);
    EXPECT_EQ(c.org.rows, 16384u);
    EXPECT_EQ(c.org.columns, 2048u);
    EXPECT_EQ(c.org.dataWidthBits, 72u);
    EXPECT_EQ(c.timing.retention, 64 * kMillisecond);
    EXPECT_EQ(c.org.totalRows(), 131072u);
    // The Figure 6 baseline anchor.
    EXPECT_DOUBLE_EQ(c.baselineRefreshesPerSecond(), 2048000.0);
    EXPECT_NO_THROW(c.validate());
}

TEST(DramConfig, Table1FourGigabyte)
{
    const DramConfig c = ddr2_4GB();
    EXPECT_EQ(c.org.capacityBytes(), 4 * kGiB);
    EXPECT_EQ(c.org.banks, 8u);
    // The Figure 9 baseline anchor: double the 2 GB module.
    EXPECT_DOUBLE_EQ(c.baselineRefreshesPerSecond(), 4096000.0);
}

TEST(DramConfig, Table2ThreeD64MB)
{
    const DramConfig c = dram3d_64MB();
    EXPECT_EQ(c.org.capacityBytes(), 64 * kMiB);
    EXPECT_EQ(c.org.ranks, 1u);
    EXPECT_EQ(c.org.banks, 4u);
    EXPECT_EQ(c.org.rows, 16384u);
    EXPECT_EQ(c.org.columns, 128u);
    // The Figure 12 baseline anchor.
    EXPECT_DOUBLE_EQ(c.baselineRefreshesPerSecond(), 1024000.0);
    EXPECT_FALSE(c.allowPowerDown);
}

TEST(DramConfig, ThreeD32msDoublesBaseline)
{
    const DramConfig c = dram3d_64MB_32ms();
    EXPECT_EQ(c.timing.retention, 32 * kMillisecond);
    // The Figure 15 baseline anchor.
    EXPECT_DOUBLE_EQ(c.baselineRefreshesPerSecond(), 2048000.0);
}

TEST(DramConfig, ThreeD32MBVariant)
{
    const DramConfig c = dram3d_32MB();
    EXPECT_EQ(c.org.capacityBytes(), 32 * kMiB);
    EXPECT_NO_THROW(c.validate());
}

TEST(DramConfig, RowBytes)
{
    EXPECT_EQ(ddr2_2GB().org.rowBytes(), 16384u);  // 2048 cols x 8 B
    EXPECT_EQ(dram3d_64MB().org.rowBytes(), 1024u); // 128 cols x 8 B
}

TEST(DramConfig, DevicesPerRank)
{
    EXPECT_EQ(ddr2_2GB().org.devicesPerRank(), 9u); // x8 devices, 72-bit
    EXPECT_EQ(dram3d_64MB().org.devicesPerRank(), 1u);
}

TEST(DramConfig, RefreshSpacing)
{
    const DramConfig c = ddr2_2GB();
    EXPECT_EQ(c.refreshSpacing(), 64 * kMillisecond / 131072);
    // Spacing x totalRows must cover the retention interval.
    EXPECT_LE(c.refreshSpacing() * c.org.totalRows(), c.timing.retention);
}

TEST(DramConfig, ValidateRejectsZeroOrganization)
{
    DramConfig c = tcfg::tinyConfig();
    c.org.rows = 0;
    EXPECT_THROW(c.validate(), std::runtime_error);
}

TEST(DramConfig, ValidateRejectsNonPowerOfTwoRows)
{
    DramConfig c = tcfg::tinyConfig();
    c.org.rows = 100;
    EXPECT_THROW(c.validate(), std::runtime_error);
}

TEST(DramConfig, ValidateRejectsBadTiming)
{
    DramConfig c = tcfg::tinyConfig();
    c.timing.tRC = c.timing.tRAS; // tRAS + tRP no longer fits
    EXPECT_THROW(c.validate(), std::runtime_error);
}

TEST(DramConfig, ValidateRejectsZeroRetention)
{
    DramConfig c = tcfg::tinyConfig();
    c.timing.retention = 0;
    EXPECT_THROW(c.validate(), std::runtime_error);
}

TEST(DramConfig, TinyConfigsAreValid)
{
    EXPECT_NO_THROW(tcfg::tinyConfig().validate());
    EXPECT_NO_THROW(tcfg::smallConfig().validate());
}

TEST(DramConfig, EdramPreset)
{
    const DramConfig c = edram_16MB();
    EXPECT_EQ(c.org.capacityBytes(), 16 * kMiB);
    EXPECT_EQ(c.timing.retention, 4 * kMillisecond); // NEC eDRAM [2]
    EXPECT_NO_THROW(c.validate());
    // Refresh pressure is an order of magnitude above the DIMM's.
    EXPECT_DOUBLE_EQ(c.baselineRefreshesPerSecond(), 4096000.0);
    // A row refresh must fit comfortably inside the refresh spacing.
    EXPECT_GT(c.refreshSpacing(), 3 * c.timing.tRFCrow);
}

TEST(DramConfig, FourGBUsesDoubleTheDevices)
{
    // 4 GB comes from x4-width chips: twice the devices per rank, so
    // per-rank energies double relative to the 2 GB module.
    EXPECT_EQ(ddr2_4GB().org.devicesPerRank(),
              2 * ddr2_2GB().org.devicesPerRank());
}

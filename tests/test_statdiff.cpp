/**
 * @file
 * statdiff library tests: metric flattening, glob tolerance lookup,
 * pass/fail semantics (self-diff clean, perturbations named), subset
 * mode, and the machine JSON verdict.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "harness/statdiff.hh"
#include "sim/mini_json.hh"

using namespace smartref;

namespace {

std::map<std::string, double>
flatten(const std::string &json)
{
    return flattenMetrics(minijson::parse(json));
}

} // namespace

TEST(StatDiff, FlattenProducesDottedPathsAndSkipsMeta)
{
    const auto m = flatten(R"({
        "meta": {"gitSha": "abc", "depth": 3},
        "schema": "s-v1",
        "top": 1,
        "nested": {"a": 2, "b": {"c": 3}},
        "arr": [10, {"x": 20}],
        "flag": true,
        "note": null
    })");
    EXPECT_EQ(m.count("meta.depth"), 0u); // top-level meta skipped
    EXPECT_EQ(m.count("schema"), 0u);     // strings carry no metric
    EXPECT_EQ(m.at("top"), 1.0);
    EXPECT_EQ(m.at("nested.a"), 2.0);
    EXPECT_EQ(m.at("nested.b.c"), 3.0);
    EXPECT_EQ(m.at("arr[0]"), 10.0);
    EXPECT_EQ(m.at("arr[1].x"), 20.0);
    EXPECT_EQ(m.at("flag"), 1.0);
    EXPECT_EQ(m.count("note"), 0u);
    EXPECT_EQ(m.size(), 6u);
}

TEST(StatDiff, GlobMatchSemantics)
{
    EXPECT_TRUE(globMatch("summary[*].gmean*",
                          "summary[0].gmeanRefreshReduction"));
    EXPECT_TRUE(globMatch("anchors.*.busNanojoulesPerAddress",
                          "anchors.2gb.busNanojoulesPerAddress"));
    EXPECT_TRUE(globMatch("*", "anything.at[0].all"));
    EXPECT_FALSE(globMatch("jobs[*].seed", "summary[0].seed"));
    EXPECT_FALSE(globMatch("a.b", "a.b.c"));
}

TEST(StatDiff, LookupPrefersExactOverGlob)
{
    DiffTolerances tol;
    tol.metrics["a.*"] = {0.5, 0.0, false};
    tol.metrics["a.b"] = {0.125, 0.0, false};
    EXPECT_EQ(tol.lookup("a.b").abs, 0.125);
    EXPECT_EQ(tol.lookup("a.c").abs, 0.5);
    EXPECT_EQ(tol.lookup("z").abs, 0.0); // fallback
}

TEST(StatDiff, SelfDiffPassesExactly)
{
    const auto m = flatten(R"({"x": 1.25, "y": {"z": -3}})");
    const DiffResult r = diffMetrics(m, m, DiffTolerances{});
    EXPECT_TRUE(r.pass());
    EXPECT_EQ(r.passed, 2u);
    EXPECT_TRUE(r.failures.empty());
}

TEST(StatDiff, PerturbationIsNamedAndFailsExitPath)
{
    const auto a = flatten(R"({"x": 100, "y": 5})");
    const auto b = flatten(R"({"x": 103, "y": 5})");
    const DiffResult r = diffMetrics(a, b, DiffTolerances{});
    EXPECT_FALSE(r.pass());
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_EQ(r.failures[0].metric, "x");
    EXPECT_EQ(r.failures[0].absDiff, 3.0);
    EXPECT_NEAR(r.failures[0].relDiff, 3.0 / 103.0, 1e-12);
    EXPECT_EQ(r.passed, 1u);
}

TEST(StatDiff, TolerancesAbsoluteRelativeAndIgnore)
{
    const auto a = flatten(R"({"abs": 10, "rel": 1000, "noisy": 1})");
    const auto b = flatten(R"({"abs": 10.5, "rel": 1009, "noisy": 42})");
    DiffTolerances tol = parseTolerances(R"({
        "metrics": {
            "abs": {"abs": 0.5},
            "rel": {"rel": 0.01},
            "noisy": {"ignore": true}
        }
    })");
    const DiffResult r = diffMetrics(a, b, tol);
    EXPECT_TRUE(r.pass()) << "failures: "
                          << (r.failures.empty()
                                  ? ""
                                  : r.failures[0].metric);
    EXPECT_EQ(r.passed, 2u);
    EXPECT_EQ(r.ignored, 1u);

    // Tighten the absolute tolerance below the drift: now it fails.
    tol.metrics["abs"].abs = 0.25;
    EXPECT_FALSE(diffMetrics(a, b, tol).pass());
}

TEST(StatDiff, MissingMetricsFailUnlessSubset)
{
    const auto golden = flatten(R"({"kept": 1})");
    const auto wide = flatten(R"({"kept": 1, "extra": 2})");
    const DiffResult strict =
        diffMetrics(golden, wide, DiffTolerances{}, false);
    EXPECT_FALSE(strict.pass());
    ASSERT_EQ(strict.missingInA.size(), 1u);
    EXPECT_EQ(strict.missingInA[0], "extra");

    // Subset mode is the CI gate: goldens pin a stable subset while
    // the schema is free to grow.
    EXPECT_TRUE(diffMetrics(golden, wide, DiffTolerances{}, true).pass());

    // A golden metric the candidate dropped fails in both modes.
    const DiffResult gone =
        diffMetrics(wide, golden, DiffTolerances{}, true);
    EXPECT_FALSE(gone.pass());
    ASSERT_EQ(gone.missingInB.size(), 1u);
    EXPECT_EQ(gone.missingInB[0], "extra");
}

TEST(StatDiff, JsonVerdictParsesAndNamesFailures)
{
    const auto a = flatten(R"({"m": 1})");
    const auto b = flatten(R"({"m": 2})");
    std::ostringstream oss;
    writeDiffJson(oss, diffMetrics(a, b, DiffTolerances{}));
    const minijson::Value v = minijson::parse(oss.str());
    EXPECT_FALSE(v.at("pass").boolean);
    ASSERT_EQ(v.at("failures").array.size(), 1u);
    EXPECT_EQ(v.at("failures").at(0).at("metric").str, "m");
    EXPECT_EQ(v.at("failures").at(0).at("absDiff").number, 1.0);
}

TEST(StatDiff, DisagreeingMetaBlocksStillCompareClean)
{
    // Two runs of the same experiment from different checkouts carry
    // different provenance; the diff must judge the stats alone.
    const auto a = flatten(R"({
        "meta": {"schemaVersion": "smartref-stats-v1",
                 "gitSha": "aaaa", "buildType": "Release",
                 "configHash": "1111111111111111"},
        "stats": {"x": {"value": 1.5}}
    })");
    const auto b = flatten(R"({
        "meta": {"schemaVersion": "smartref-stats-v1",
                 "gitSha": "bbbb", "buildType": "Debug",
                 "configHash": "2222222222222222"},
        "stats": {"x": {"value": 1.5}}
    })");
    const DiffResult r = diffMetrics(a, b, DiffTolerances{});
    EXPECT_TRUE(r.pass());
    EXPECT_EQ(r.passed, 1u);

    // Only the *top-level* meta is provenance; a nested member named
    // "meta" is data and must still be compared.
    const auto c = flatten(R"({"inner": {"meta": {"depth": 3}}})");
    const auto d = flatten(R"({"inner": {"meta": {"depth": 4}}})");
    EXPECT_FALSE(diffMetrics(c, d, DiffTolerances{}).pass());
}

TEST(StatDiff, MetaOnlyArtifactsCompareEmpty)
{
    // Artifacts that disagree in nothing but meta flatten to the same
    // (possibly empty) metric set — vacuously clean, never a crash.
    const auto a = flatten(R"({"meta": {"gitSha": "aaaa"}})");
    const auto b = flatten(R"({"meta": {"gitSha": "bbbb"}})");
    const DiffResult r = diffMetrics(a, b, DiffTolerances{});
    EXPECT_TRUE(r.pass());
    EXPECT_EQ(r.passed, 0u);
}

TEST(StatDiff, MalformedTolerancesAreRejected)
{
    EXPECT_THROW(parseTolerances(R"({"metrics": {"m": {"abs": -1}}})"),
                 std::runtime_error);
    EXPECT_THROW(parseTolerances(R"({"bogus": {}})"), std::runtime_error);
    EXPECT_THROW(parseTolerances(R"([1, 2])"), std::runtime_error);
}

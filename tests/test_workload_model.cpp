#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "trace/workload_model.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

struct Capture
{
    std::vector<Addr> addrs;
    std::vector<bool> writes;

    WorkloadModel::Sink
    sink()
    {
        return [this](Addr a, bool w) {
            addrs.push_back(a);
            writes.push_back(w);
        };
    }
};

WorkloadParams
baseParams()
{
    WorkloadParams wp;
    wp.name = "test";
    wp.rowVisitsPerSecond = 1e6;
    wp.footprintRows = 32;
    wp.accessesPerVisit = 1;
    wp.randomJumpProb = 0.0;
    wp.readFraction = 1.0;
    wp.interArrivalJitter = 0.0;
    wp.seed = 3;
    return wp;
}

constexpr std::uint64_t kRowBytes = 1024;

} // namespace

TEST(Workload, DeterministicForSameSeed)
{
    Capture capA, capB;
    EventQueue eqA, eqB;
    StatGroup rootA("a"), rootB("b");
    WorkloadModel a(baseParams(), kRowBytes, capA.sink(), eqA, &rootA);
    WorkloadModel b(baseParams(), kRowBytes, capB.sink(), eqB, &rootB);
    a.start();
    b.start();
    eqA.runUntil(kMillisecond);
    eqB.runUntil(kMillisecond);
    EXPECT_EQ(capA.addrs, capB.addrs);
    EXPECT_EQ(capA.writes, capB.writes);
}

TEST(Workload, RateIsApproximatelyRespected)
{
    Capture cap;
    EventQueue eq;
    StatGroup root("r");
    WorkloadParams wp = baseParams();
    wp.rowVisitsPerSecond = 1e6; // 1000 visits per ms
    WorkloadModel w(wp, kRowBytes, cap.sink(), eq, &root);
    w.start();
    eq.runUntil(10 * kMillisecond);
    EXPECT_NEAR(static_cast<double>(w.rowVisits()), 10000.0, 500.0);
}

TEST(Workload, SequentialSweepCoversFootprint)
{
    Capture cap;
    EventQueue eq;
    StatGroup root("r");
    WorkloadModel w(baseParams(), kRowBytes, cap.sink(), eq, &root);
    w.start();
    eq.runUntil(kMillisecond); // ~1000 visits over 32 rows
    std::set<std::uint64_t> rows;
    for (Addr a : cap.addrs)
        rows.insert(a / kRowBytes);
    EXPECT_EQ(rows.size(), 32u);
    // All rows inside the footprint.
    for (std::uint64_t r : rows)
        EXPECT_LT(r, 32u);
}

TEST(Workload, AccessesPerVisitMultiplies)
{
    Capture cap;
    EventQueue eq;
    StatGroup root("r");
    WorkloadParams wp = baseParams();
    wp.accessesPerVisit = 4;
    WorkloadModel w(wp, kRowBytes, cap.sink(), eq, &root);
    w.start();
    eq.runUntil(kMillisecond);
    EXPECT_NEAR(static_cast<double>(w.accessesIssued()),
                4.0 * static_cast<double>(w.rowVisits()), 8.0);
    // The run stays within one row: consecutive same-visit accesses
    // share the row index.
    ASSERT_GE(cap.addrs.size(), 4u);
}

TEST(Workload, ReadFractionHonoured)
{
    Capture cap;
    EventQueue eq;
    StatGroup root("r");
    WorkloadParams wp = baseParams();
    wp.readFraction = 0.25;
    wp.rowVisitsPerSecond = 2e6;
    WorkloadModel w(wp, kRowBytes, cap.sink(), eq, &root);
    w.start();
    eq.runUntil(10 * kMillisecond);
    std::uint64_t writes = 0;
    for (bool isW : cap.writes)
        writes += isW;
    EXPECT_NEAR(static_cast<double>(writes) /
                    static_cast<double>(cap.writes.size()),
                0.75, 0.05);
}

TEST(Workload, StrideAndOffsetPartitionFootprints)
{
    Capture capA, capB;
    EventQueue eq;
    StatGroup root("r");
    WorkloadParams a = baseParams();
    a.rowStride = 2;
    a.rowOffset = 0;
    WorkloadParams b = baseParams();
    b.rowStride = 2;
    b.rowOffset = 1;
    b.seed = 11;
    WorkloadModel wa(a, kRowBytes, capA.sink(), eq, &root);
    StatGroup root2("r2");
    WorkloadModel wb(b, kRowBytes, capB.sink(), eq, &root2);
    wa.start();
    wb.start();
    eq.runUntil(kMillisecond);
    for (Addr addr : capA.addrs)
        EXPECT_EQ((addr / kRowBytes) % 2, 0u);
    for (Addr addr : capB.addrs)
        EXPECT_EQ((addr / kRowBytes) % 2, 1u);
}

TEST(Workload, ZipfJumpsStayInsideFootprint)
{
    Capture cap;
    EventQueue eq;
    StatGroup root("r");
    WorkloadParams wp = baseParams();
    wp.randomJumpProb = 1.0;
    wp.zipfAlpha = 1.0;
    WorkloadModel w(wp, kRowBytes, cap.sink(), eq, &root);
    w.start();
    eq.runUntil(kMillisecond);
    for (Addr a : cap.addrs)
        EXPECT_LT(a / kRowBytes, 32u);
    EXPECT_GT(w.rowVisits(), 100u);
}

TEST(Workload, StopHaltsGeneration)
{
    Capture cap;
    EventQueue eq;
    StatGroup root("r");
    WorkloadModel w(baseParams(), kRowBytes, cap.sink(), eq, &root);
    w.start();
    eq.runUntil(kMillisecond);
    const auto count = cap.addrs.size();
    w.stop();
    eq.runUntil(2 * kMillisecond);
    EXPECT_EQ(cap.addrs.size(), count);
}

TEST(Workload, StopAfterClampsMidVisitAccesses)
{
    // With 30 accesses spaced 45 ns apart, every visit's deferred train
    // spans 1305 ns -- longer than the 1 us visit spacing -- so the last
    // visit before stopAfter is guaranteed to have accesses that would
    // land past the boundary. Those must be clamped off: no access may
    // fire at or after stopAfter, and the accesses stat must count
    // exactly the accesses delivered to the sink.
    EventQueue eq;
    StatGroup root("r");
    WorkloadParams wp = baseParams();
    wp.accessesPerVisit = 30;
    wp.interArrivalJitter = 0.0;
    wp.stopAfter = 100 * kMicrosecond;
    std::vector<Tick> fireTicks;
    WorkloadModel w(wp, kRowBytes,
                    [&](Addr, bool) { fireTicks.push_back(eq.now()); },
                    eq, &root);
    w.start();
    eq.run(); // drains: visit() stops rescheduling at stopAfter
    ASSERT_FALSE(fireTicks.empty());
    for (Tick t : fireTicks)
        EXPECT_LT(t, wp.stopAfter);
    EXPECT_EQ(w.accessesIssued(), fireTicks.size());
    // At least one visit really was clamped mid-train.
    EXPECT_LT(w.accessesIssued(), 30 * w.rowVisits());
}

TEST(Workload, OversizedVisitsFallBackToPerEventPath)
{
    // More than 65 accesses per visit exceeds the burst write-mask and
    // takes the legacy one-event-per-access path; the clamp and the
    // stats contract must hold there too.
    EventQueue eq;
    StatGroup root("r");
    WorkloadParams wp = baseParams();
    wp.accessesPerVisit = 80;
    wp.interArrivalJitter = 0.0;
    wp.readFraction = 0.5;
    wp.stopAfter = 50 * kMicrosecond;
    std::vector<Tick> fireTicks;
    WorkloadModel w(wp, kRowBytes,
                    [&](Addr, bool) { fireTicks.push_back(eq.now()); },
                    eq, &root);
    w.start();
    eq.run();
    ASSERT_FALSE(fireTicks.empty());
    for (Tick t : fireTicks)
        EXPECT_LT(t, wp.stopAfter);
    EXPECT_EQ(w.accessesIssued(), fireTicks.size());
}

TEST(Workload, BurstPathMatchesPerEventPath)
{
    // 60 accesses ride the burst bitmask; 70 take the per-event loop.
    // Identical seeds must produce the identical access stream (address,
    // write flag, tick) for the shared prefix, pinning the burst
    // rewrite's RNG draw order to the legacy path's.
    struct Timed
    {
        std::vector<Addr> addrs;
        std::vector<bool> writes;
        std::vector<Tick> ticks;
    };
    auto run = [](std::uint32_t perVisit) {
        Timed t;
        EventQueue eq;
        StatGroup root("r");
        WorkloadParams wp = baseParams();
        wp.accessesPerVisit = perVisit;
        wp.readFraction = 0.5;
        wp.interArrivalJitter = 0.0;
        // 10 us between visits: both trains (2.7 / 3.15 us) finish
        // before the next visit starts, so the first visit's accesses
        // are the first perVisit sink calls in both runs.
        wp.rowVisitsPerSecond = 1e5;
        WorkloadModel w(wp, kRowBytes,
                        [&](Addr a, bool wr) {
                            t.addrs.push_back(a);
                            t.writes.push_back(wr);
                            t.ticks.push_back(eq.now());
                        },
                        eq, &root);
        w.start();
        eq.runUntil(100 * kMicrosecond);
        return t;
    };
    const Timed burst = run(60);
    const Timed legacy = run(70);
    // Per visit the first 60 accesses agree; compare the first visit's
    // train, which is fully contained in both runs.
    ASSERT_GE(burst.addrs.size(), 60u);
    ASSERT_GE(legacy.addrs.size(), 60u);
    for (std::size_t i = 0; i < 60; ++i) {
        EXPECT_EQ(burst.addrs[i], legacy.addrs[i]) << i;
        EXPECT_EQ(burst.writes[i], legacy.writes[i]) << i;
        EXPECT_EQ(burst.ticks[i], legacy.ticks[i]) << i;
    }
}

TEST(Workload, JitterChangesArrivalPattern)
{
    Capture capA, capB;
    EventQueue eqA, eqB;
    StatGroup rootA("a"), rootB("b");
    WorkloadParams regular = baseParams();
    WorkloadParams jittered = baseParams();
    jittered.interArrivalJitter = 1.0;
    WorkloadModel wa(regular, kRowBytes, capA.sink(), eqA, &rootA);
    WorkloadModel wb(jittered, kRowBytes, capB.sink(), eqB, &rootB);
    wa.start();
    wb.start();
    eqA.runUntil(10 * kMillisecond);
    eqB.runUntil(10 * kMillisecond);
    // Means agree within 15 %...
    EXPECT_NEAR(static_cast<double>(wb.rowVisits()),
                static_cast<double>(wa.rowVisits()),
                0.15 * static_cast<double>(wa.rowVisits()));
}

TEST(Workload, RejectsBadParams)
{
    Capture cap;
    EventQueue eq;
    StatGroup root("r");
    WorkloadParams wp = baseParams();
    wp.footprintRows = 0;
    EXPECT_THROW(WorkloadModel(wp, kRowBytes, cap.sink(), eq, &root),
                 std::logic_error);
    wp = baseParams();
    wp.rowVisitsPerSecond = 0.0;
    EXPECT_THROW(WorkloadModel(wp, kRowBytes, cap.sink(), eq, &root),
                 std::logic_error);
    wp = baseParams();
    wp.accessesPerVisit = 0;
    EXPECT_THROW(WorkloadModel(wp, kRowBytes, cap.sink(), eq, &root),
                 std::logic_error);
}

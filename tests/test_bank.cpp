#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "test_config.hh"

using namespace smartref;

class BankTest : public ::testing::Test
{
  protected:
    DramTiming t = tcfg::tinyConfig().timing;
    Bank bank;
};

TEST_F(BankTest, StartsPrecharged)
{
    EXPECT_FALSE(bank.isOpen());
    EXPECT_EQ(bank.actAllowedAt(), 0u);
}

TEST_F(BankTest, ActivateOpensRowAndSetsWindows)
{
    bank.activate(42, 1000, t);
    EXPECT_TRUE(bank.isOpen());
    EXPECT_EQ(bank.openRow(), 42u);
    EXPECT_EQ(bank.rdWrAllowedAt(), 1000 + t.tRCD);
    EXPECT_EQ(bank.preAllowedAt(), 1000 + t.tRAS);
    EXPECT_EQ(bank.actAllowedAt(), 1000 + t.tRC);
}

TEST_F(BankTest, PrechargeClosesAndDelaysActivate)
{
    bank.activate(1, 0, t);
    const Tick preTick = t.tRAS;
    bank.precharge(preTick, t);
    EXPECT_FALSE(bank.isOpen());
    // tRC from the activate still dominates tRP from this precharge.
    EXPECT_EQ(bank.actAllowedAt(), std::max(t.tRC, preTick + t.tRP));
}

TEST_F(BankTest, ReadExtendsPrechargeWindow)
{
    bank.activate(1, 0, t);
    const Tick rd = t.tRCD;
    bank.read(rd, t);
    EXPECT_GE(bank.preAllowedAt(), rd + t.tRTP);
}

TEST_F(BankTest, WriteExtendsPrechargeWindowFurther)
{
    bank.activate(1, 0, t);
    const Tick wr = t.tRCD;
    bank.write(wr, t);
    EXPECT_EQ(bank.preAllowedAt(),
              std::max(t.tRAS, wr + t.tCL + t.tBurst + t.tWR));
}

TEST_F(BankTest, RefreshClosedBankTakesRfcRow)
{
    const Tick done = bank.refresh(500, t, false);
    EXPECT_EQ(done, 500 + t.tRFCrow);
    EXPECT_EQ(bank.busyUntil(), done);
    EXPECT_GE(bank.actAllowedAt(), done);
    EXPECT_FALSE(bank.isOpen());
}

TEST_F(BankTest, RefreshOpenBankAddsPrechargeTime)
{
    bank.activate(3, 0, t);
    const Tick start = t.tRAS;
    const Tick done = bank.refresh(start, t, true);
    EXPECT_EQ(done, start + t.tRP + t.tRFCrow);
    EXPECT_FALSE(bank.isOpen());
}

TEST_F(BankTest, BackToBackActivatesRespectTRC)
{
    bank.activate(1, 0, t);
    bank.precharge(t.tRAS, t);
    EXPECT_GE(bank.actAllowedAt(), t.tRC);
    bank.activate(2, bank.actAllowedAt(), t);
    EXPECT_EQ(bank.openRow(), 2u);
}

#include <gtest/gtest.h>

#include "ctrl/memory_controller.hh"
#include "test_config.hh"

using namespace smartref;

namespace {

/** Captures policy notifications for inspection. */
class RecordingPolicy : public RefreshPolicy
{
  public:
    explicit RecordingPolicy(StatGroup *parent)
        : RefreshPolicy("refresh.recording", parent)
    {
    }

    void start() override {}

    void
    onRowActivated(std::uint32_t rank, std::uint32_t bank,
                   std::uint32_t row) override
    {
        activated.push_back({rank, bank, row});
    }

    void
    onRowClosed(std::uint32_t rank, std::uint32_t bank,
                std::uint32_t row) override
    {
        closed.push_back({rank, bank, row});
    }

    void
    onRefreshIssued(const RefreshRequest &req) override
    {
        issued.push_back(req);
    }

    std::string policyName() const override { return "recording"; }

    struct Coord
    {
        std::uint32_t rank, bank, row;
    };
    std::vector<Coord> activated;
    std::vector<Coord> closed;
    std::vector<RefreshRequest> issued;
};

} // namespace

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : root("root"),
          dram(tcfg::tinyConfig(), eq, &root),
          ctrl(dram, eq, ControllerConfig{}, &root),
          policy(&root)
    {
        ctrl.setRefreshPolicy(&policy);
    }

    Addr
    addrOf(std::uint64_t blockRow, std::uint64_t offset = 0) const
    {
        return blockRow * dram.config().org.rowBytes() + offset;
    }

    EventQueue eq;
    StatGroup root;
    DramModule dram;
    MemoryController ctrl;
    RecordingPolicy policy;
};

TEST_F(ControllerTest, FirstAccessIsRowMiss)
{
    ctrl.access(addrOf(0), false);
    eq.runUntil(kMicrosecond);
    EXPECT_EQ(ctrl.rowMisses(), 1u);
    EXPECT_EQ(ctrl.demandReads(), 1u);
    EXPECT_EQ(policy.activated.size(), 1u);
}

TEST_F(ControllerTest, SameRowBackToBackIsHit)
{
    ctrl.access(addrOf(0, 0), false);
    ctrl.access(addrOf(0, 64), false);
    eq.runUntil(kMicrosecond / 10); // before the idle-precharge timer
    EXPECT_EQ(ctrl.rowMisses(), 1u);
    EXPECT_EQ(ctrl.rowHits(), 1u);
}

TEST_F(ControllerTest, DifferentRowSameBankConflicts)
{
    const auto banks = dram.config().org.banks;
    ctrl.access(addrOf(0), false);
    ctrl.access(addrOf(banks), false); // next row in bank 0
    eq.runUntil(kMicrosecond / 10);
    EXPECT_EQ(ctrl.rowConflicts(), 1u);
    // The conflict closed the first row: the policy must see it.
    ASSERT_EQ(policy.closed.size(), 1u);
    EXPECT_EQ(policy.closed[0].row, 0u);
}

TEST_F(ControllerTest, CompletionCallbackDeliversLatency)
{
    Tick completion = 0;
    ctrl.access(addrOf(3), false,
                [&](const MemRequest &, Tick done) { completion = done; });
    eq.runUntil(kMicrosecond);
    const auto &t = dram.config().timing;
    EXPECT_EQ(completion, t.tRCD + t.tCL + t.tBurst);
    EXPECT_GT(ctrl.avgLatency(), 0.0);
}

TEST_F(ControllerTest, WritesAreCounted)
{
    ctrl.access(addrOf(1), true);
    eq.runUntil(kMicrosecond);
    EXPECT_EQ(ctrl.demandWrites(), 1u);
    EXPECT_EQ(dram.writes(), 1u);
}

TEST_F(ControllerTest, IdlePrechargeClosesPageAndNotifies)
{
    ctrl.access(addrOf(0), false);
    eq.runUntil(10 * kMicrosecond); // past the idle timeout
    EXPECT_FALSE(dram.isBankOpen(0, 0));
    ASSERT_EQ(policy.closed.size(), 1u);
    EXPECT_EQ(policy.closed[0].row, 0u);
    EXPECT_TRUE(ctrl.idle());
}

TEST_F(ControllerTest, IdlePrechargeCanBeDisabled)
{
    ControllerConfig cfg;
    cfg.idlePrechargeAfter = 0;
    MemoryController ctrl2(dram, eq, cfg, &root);
    ctrl2.access(addrOf(0), false);
    eq.runUntil(10 * kMicrosecond);
    EXPECT_TRUE(dram.isBankOpen(0, 0));
}

TEST_F(ControllerTest, RefreshRequestIssuesAndNotifies)
{
    RefreshRequest req;
    req.rank = 0;
    req.bank = 1;
    req.row = 5;
    req.created = eq.now();
    ctrl.pushRefresh(req);
    eq.runUntil(kMicrosecond);
    ASSERT_EQ(policy.issued.size(), 1u);
    EXPECT_EQ(policy.issued[0].row, 5u);
    EXPECT_EQ(dram.rasOnlyRefreshes(), 1u);
    EXPECT_EQ(ctrl.refreshBacklog(), 0u);
}

TEST_F(ControllerTest, CbrRefreshResolvedViaMirror)
{
    for (int i = 0; i < 3; ++i) {
        RefreshRequest req;
        req.rank = 0;
        req.cbr = true;
        req.created = eq.now();
        ctrl.pushRefresh(req);
    }
    eq.runUntil(kMicrosecond);
    ASSERT_EQ(policy.issued.size(), 3u);
    // Mirror walks the same (bank, row) order as a device CBR counter.
    EXPECT_EQ(policy.issued[0].bank, 0u);
    EXPECT_EQ(policy.issued[1].bank, 1u);
    EXPECT_EQ(policy.issued[2].bank, 0u);
    EXPECT_EQ(policy.issued[2].row, 1u);
}

TEST_F(ControllerTest, RefreshToOpenBankClosesItAndNotifies)
{
    ctrl.access(addrOf(0), false); // opens bank 0 row 0
    eq.runUntil(200); // demand issued, row open, before idle precharge
    RefreshRequest req;
    req.rank = 0;
    req.bank = 0;
    req.row = 9;
    req.created = eq.now();
    ctrl.pushRefresh(req);
    eq.runUntil(eq.now() + 10 * kMicrosecond);
    // The refresh implicitly closed row 0.
    bool sawClose = false;
    for (const auto &c : policy.closed)
        sawClose |= (c.row == 0);
    EXPECT_TRUE(sawClose);
}

TEST_F(ControllerTest, BacklogTracksOutstandingRefreshes)
{
    for (std::uint32_t i = 0; i < 5; ++i) {
        RefreshRequest req;
        req.rank = 0;
        req.bank = 0;
        req.row = i;
        req.created = eq.now();
        ctrl.pushRefresh(req);
    }
    EXPECT_GE(ctrl.maxRefreshBacklog(), 4u);
    eq.runUntil(kMicrosecond * 10);
    EXPECT_EQ(ctrl.refreshBacklog(), 0u);
}

TEST_F(ControllerTest, LatencySumMatchesHistogram)
{
    for (int i = 0; i < 4; ++i)
        ctrl.access(addrOf(i), false);
    eq.runUntil(kMicrosecond * 10);
    const auto &h = ctrl.latencyHistogram();
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_NEAR(ctrl.latencySumTicks(), h.mean() * 4.0, 1.0);
}

TEST_F(ControllerTest, MapperMatchesConfigScheme)
{
    EXPECT_EQ(ctrl.mapper().scheme(), AddressScheme::RowRankBankColumn);
    EXPECT_EQ(ctrl.mapper().capacityBytes(),
              dram.config().org.capacityBytes());
}

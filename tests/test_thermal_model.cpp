#include <gtest/gtest.h>

#include "dram/thermal_model.hh"

using namespace smartref;

TEST(Thermal, PaperTemperatureAnchor)
{
    // Annavaram et al. [14]: a 64 MB stacked die runs at 90.27 C. With
    // the default package parameters and the stacked module's typical
    // simulated power draw (~0.11 W) the model reproduces that anchor.
    ThermalModel model;
    EXPECT_NEAR(model.temperatureC(0.109), 90.27, 0.5);
}

TEST(Thermal, StackedDieExceedsMicronThreshold)
{
    ThermalModel model;
    EXPECT_TRUE(model.requiresFastRefresh(0.11));
    EXPECT_GT(model.temperatureC(0.11), 85.0);
}

TEST(Thermal, DimmStaysCool)
{
    ThermalModel dimm{ThermalModel::dimmParams()};
    // A DIMM at ~0.7 W with no conducted heat stays far below 85 C.
    EXPECT_FALSE(dimm.requiresFastRefresh(0.7));
    EXPECT_LT(dimm.temperatureC(0.7), 60.0);
}

TEST(Thermal, RetentionRuleHalvesWhenHot)
{
    ThermalModel hot;
    EXPECT_EQ(hot.requiredRetention(0.11, 64 * kMillisecond),
              32 * kMillisecond);
    ThermalModel cool{ThermalModel::dimmParams()};
    EXPECT_EQ(cool.requiredRetention(0.7, 64 * kMillisecond),
              64 * kMillisecond);
}

TEST(Thermal, TemperatureMonotoneInPower)
{
    ThermalModel model;
    EXPECT_LT(model.temperatureC(0.05), model.temperatureC(0.10));
    EXPECT_LT(model.temperatureC(0.10), model.temperatureC(0.20));
}

TEST(Thermal, ThresholdBoundaryIsStrict)
{
    ThermalParams p;
    p.ambientC = 85.0;
    p.thetaJA = 1.0;
    p.conductedPowerW = 0.0;
    ThermalModel model(p);
    EXPECT_FALSE(model.requiresFastRefresh(0.0)); // exactly 85: not over
    EXPECT_TRUE(model.requiresFastRefresh(0.01));
}

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "sim/event_queue.hh"
#include "sim/stats_json.hh"
#include "test_config.hh"

using namespace smartref;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Stats);
    eq.schedule(5, [&] { order.push_back(1); }, EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); }, EventPriority::ClockTick);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), std::logic_error);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil(100);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutedCountTracks)
{
    EventQueue eq;
    for (int i = 1; i <= 5; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, SelfReschedulingStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> tick = [&] {
        ++count;
        eq.scheduleAfter(10, tick);
    };
    eq.schedule(0, tick);
    eq.runUntil(100);
    EXPECT_EQ(count, 11); // ticks at 0,10,...,100
    EXPECT_EQ(eq.pending(), 1u);
}

namespace {

/** Deterministic 64-bit LCG so stress tests need no <random> state. */
struct Lcg
{
    std::uint64_t s;
    std::uint64_t
    operator()()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s >> 33;
    }
};

constexpr EventPriority kPrios[] = {EventPriority::ClockTick,
                                    EventPriority::Default,
                                    EventPriority::Stats};

struct Scheduled
{
    Tick when;
    int prio;
    int idx;
};

/** Expected firing order: stable sort by (when, prio) of creation order. */
std::vector<int>
expectedOrder(std::vector<Scheduled> recs)
{
    std::stable_sort(recs.begin(), recs.end(),
                     [](const Scheduled &a, const Scheduled &b) {
                         return a.when != b.when ? a.when < b.when
                                                 : a.prio < b.prio;
                     });
    std::vector<int> order;
    for (const Scheduled &r : recs)
        order.push_back(r.idx);
    return order;
}

} // namespace

TEST(EventQueue, HeapStressMatchesStableSortOrder)
{
    EventQueue eq;
    Lcg rnd{12345};
    std::vector<Scheduled> recs;
    std::vector<int> fired;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const Tick when = rnd() % 500;
        const EventPriority prio = kPrios[rnd() % 3];
        recs.push_back({when, static_cast<int>(prio), i});
        eq.schedule(when, [&fired, i] { fired.push_back(i); }, prio);
    }
    eq.run();
    EXPECT_EQ(fired, expectedOrder(recs));
    EXPECT_EQ(eq.executed(), static_cast<std::uint64_t>(n));
}

TEST(EventQueue, InterleavedScheduleAndRunUntilKeepsOrder)
{
    // Alternate runUntil slices with fresh batches of future events; the
    // global order must still be the stable (when, prio) sort of
    // creation order, which exercises the min-buffer displacement logic
    // as later batches undercut the buffered minimum.
    EventQueue eq;
    Lcg rnd{99};
    std::vector<Scheduled> recs;
    std::vector<int> fired;
    int idx = 0;
    for (int slice = 0; slice < 20; ++slice) {
        const Tick base = eq.now();
        for (int i = 0; i < 50; ++i) {
            const Tick when = base + rnd() % 300;
            const EventPriority prio = kPrios[rnd() % 3];
            recs.push_back({when, static_cast<int>(prio), idx});
            const int id = idx++;
            eq.schedule(when, [&fired, id] { fired.push_back(id); }, prio);
        }
        eq.runUntil(base + 100);
    }
    eq.run();
    EXPECT_EQ(fired, expectedOrder(recs));
}

TEST(EventQueue, MinBufferDisplacement)
{
    // Each schedule below undercuts the currently buffered minimum, or
    // lands behind it; firing order must be unaffected either way.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(4); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(3, [&] { order.push_back(1); });
    eq.schedule(7, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, BurstFiresAtEveryInterval)
{
    EventQueue eq;
    std::vector<Tick> fires;
    eq.scheduleBurst(10, 5, 4, [&] { fires.push_back(eq.now()); });
    EXPECT_EQ(eq.pending(), 4u);
    eq.run();
    EXPECT_EQ(fires, (std::vector<Tick>{10, 15, 20, 25}));
    EXPECT_EQ(eq.executed(), 4u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, SingleOccurrenceBurstAllowsZeroInterval)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleBurst(7, 0, 1, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, BurstReservesContiguousSequenceNumbers)
{
    // A burst reserves one sequence number per occurrence up front, so
    // every occurrence beats a same-tick event scheduled after the
    // scheduleBurst call -- exactly as if each occurrence had been
    // scheduled individually at creation time.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleBurst(10, 10, 3, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.schedule(30, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 1, 2, 1, 3}));
}

TEST(EventQueue, BurstMatchesIndividualSchedules)
{
    auto runPattern = [](bool useBurst) {
        EventQueue eq;
        std::vector<int> order;
        eq.schedule(5, [&] { order.push_back(0); });
        if (useBurst) {
            eq.scheduleBurst(5, 5, 3, [&] { order.push_back(1); });
        } else {
            for (Tick t = 5; t <= 15; t += 5)
                eq.schedule(t, [&] { order.push_back(1); });
        }
        eq.schedule(5, [&] { order.push_back(2); });
        eq.schedule(15, [&] { order.push_back(3); });
        eq.run();
        return order;
    };
    EXPECT_EQ(runPattern(true), runPattern(false));
}

TEST(EventQueue, RunUntilStopsMidBurst)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleBurst(10, 10, 5, [&] { ++fired; });
    eq.runUntil(25);
    EXPECT_EQ(fired, 2); // occurrences at 10 and 20
    EXPECT_EQ(eq.pending(), 3u);
    eq.run();
    EXPECT_EQ(fired, 5);
}

TEST(EventQueue, BurstCallbackCanScheduleReentrantly)
{
    // Callbacks run from slab storage that must stay valid while they
    // schedule further work (which can grow the slab).
    EventQueue eq;
    int burstFires = 0;
    int extraFires = 0;
    eq.scheduleBurst(1, 1, 200, [&] {
        ++burstFires;
        if (burstFires % 3 == 0) {
            eq.scheduleAfter(1, [&] { ++extraFires; });
            eq.scheduleBurst(eq.now() + 1, 1, 2, [&] { ++extraFires; });
        }
    });
    eq.run();
    EXPECT_EQ(burstFires, 200);
    EXPECT_EQ(extraFires, 66 * 3);
}

namespace {

/** One fixed-seed Smart-Refresh run, stats dumped as JSON. */
std::string
runFixedSeedStats(int slices)
{
    SystemConfig cfg;
    cfg.dram = tcfg::tinyConfig();
    cfg.policy = PolicyKind::Smart;
    cfg.smart.autoReconfigure = false;

    System sys(cfg);
    WorkloadParams wp;
    wp.name = "det";
    wp.footprintRows = cfg.dram.org.totalRows() / 2;
    wp.rowVisitsPerSecond = 2e6;
    wp.accessesPerVisit = 4;
    wp.randomJumpProb = 0.2;
    wp.readFraction = 0.7;
    wp.interArrivalJitter = 0.5;
    wp.seed = 17;
    sys.addWorkload(wp);

    const Tick total = 3 * cfg.dram.timing.retention;
    for (int s = 0; s < slices; ++s)
        sys.run(total / slices);

    std::ostringstream os;
    writeStatsJson(sys, os);
    return os.str();
}

} // namespace

TEST(EventQueueDeterminism, FixedSeedRunsAreByteIdentical)
{
    const std::string once = runFixedSeedStats(1);
    EXPECT_EQ(once, runFixedSeedStats(1));
}

TEST(EventQueueDeterminism, SlicedRunUntilMatchesSingleRun)
{
    // Driving the same simulation through many runUntil() slices must
    // not perturb event order or any statistic: the min-buffer fast
    // path and the heap see very different traffic in the two shapes.
    // Two stats are energy integrals accumulated at run() boundaries
    // (background standby, counter SRAM); slicing regroups their float
    // sums, so those scalars may differ by rounding only -- every
    // event-order-derived stat must be byte-exact.
    const std::string once = runFixedSeedStats(1);
    const std::string sliced = runFixedSeedStats(16);
    std::istringstream ia(once);
    std::istringstream ib(sliced);
    std::string la;
    std::string lb;
    while (true) {
        const bool ga = static_cast<bool>(std::getline(ia, la));
        const bool gb = static_cast<bool>(std::getline(ib, lb));
        ASSERT_EQ(ga, gb) << "stats dumps differ in length";
        if (!ga)
            break;
        if (la == lb)
            continue;
        ASSERT_NE(la.find("\"kind\": \"scalar\""), std::string::npos) << la;
        const auto va = la.find("\"value\": ");
        ASSERT_NE(va, std::string::npos) << la;
        ASSERT_EQ(la.substr(0, va), lb.substr(0, va));
        const auto da = la.find("\"desc\"");
        const auto db = lb.find("\"desc\"");
        ASSERT_NE(da, std::string::npos) << la;
        ASSERT_EQ(la.substr(da), lb.substr(db));
        const double xa = std::stod(la.substr(va + 9));
        const double xb = std::stod(lb.substr(va + 9));
        const double tol =
            1e-12 * std::max(std::abs(xa), std::abs(xb));
        EXPECT_NEAR(xa, xb, tol) << la;
    }
}

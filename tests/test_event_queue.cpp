#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_queue.hh"

using namespace smartref;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Stats);
    eq.schedule(5, [&] { order.push_back(1); }, EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); }, EventPriority::ClockTick);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), std::logic_error);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil(100);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutedCountTracks)
{
    EventQueue eq;
    for (int i = 1; i <= 5; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, SelfReschedulingStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> tick = [&] {
        ++count;
        eq.scheduleAfter(10, tick);
    };
    eq.schedule(0, tick);
    eq.runUntil(100);
    EXPECT_EQ(count, 11); // ticks at 0,10,...,100
    EXPECT_EQ(eq.pending(), 1u);
}

#include <gtest/gtest.h>

#include "core/optimality.hh"
#include "core/smart_refresh.hh"
#include "ctrl/memory_controller.hh"
#include "test_config.hh"

using namespace smartref;

TEST(Optimality, PaperFormulaValues)
{
    // Section 4.4: 75 % for 2-bit counters, 87.5 % for 3-bit.
    EXPECT_DOUBLE_EQ(smartRefreshOptimality(2), 0.75);
    EXPECT_DOUBLE_EQ(smartRefreshOptimality(3), 0.875);
    EXPECT_DOUBLE_EQ(smartRefreshOptimality(4), 0.9375);
    EXPECT_DOUBLE_EQ(smartRefreshOptimality(1), 0.5);
}

TEST(Optimality, MonotoneInCounterWidth)
{
    for (std::uint32_t b = 1; b < 8; ++b)
        EXPECT_LT(smartRefreshOptimality(b), smartRefreshOptimality(b + 1));
}

class MeasuredOptimality : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MeasuredOptimality, IdleSmartRefreshRespectsWorstCaseBound)
{
    // Run Smart Refresh with no demand traffic: every refresh must land
    // no earlier than the analytic worst case (bound x retention) and
    // no later than the retention deadline.
    const std::uint32_t bits = GetParam();
    const DramConfig cfg = tcfg::tinyConfig();
    EventQueue eq;
    StatGroup root("root");
    DramModule dram(cfg, eq, &root);
    MemoryController ctrl(dram, eq, ControllerConfig{}, &root);
    SmartRefreshConfig sc;
    sc.counterBits = bits;
    sc.segments = 8;
    sc.autoReconfigure = false;
    SmartRefreshPolicy policy(cfg, sc, eq, &root);
    ctrl.setRefreshPolicy(&policy);

    // Warm one interval (init transient), then measure three.
    eq.runUntil(4 * cfg.timing.retention);

    const auto &tracker = dram.retention();
    EXPECT_EQ(tracker.violations(), 0u);
    // Steady-state refreshes of untouched rows land within one counter
    // access period of the deadline: measured optimality must beat the
    // paper's worst-case bound (the mean includes the cheaper init
    // interval, so compare against a slightly relaxed bound).
    EXPECT_GT(tracker.measuredOptimality(),
              smartRefreshOptimality(bits) * 0.80);
    EXPECT_LE(tracker.maxObservedAge(),
              cfg.timing.retention + 20 * kMicrosecond);
}

INSTANTIATE_TEST_SUITE_P(CounterWidths, MeasuredOptimality,
                         ::testing::Values(2u, 3u, 4u));

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/activity_monitor.hh"

using namespace smartref;

namespace {
constexpr std::uint64_t kRows = 10000;
} // namespace

class MonitorTest : public ::testing::Test
{
  protected:
    StatGroup root{"root"};
    ActivityMonitor mon{kRows, ActivityMonitorParams{}, &root};
};

TEST_F(MonitorTest, ThresholdsFromFractions)
{
    EXPECT_EQ(mon.disableThreshold(), 100u); // 1 % of 10000
    EXPECT_EQ(mon.enableThreshold(), 200u);  // 2 %
}

TEST_F(MonitorTest, QuietWindowDisablesSmart)
{
    for (int i = 0; i < 50; ++i)
        mon.recordAccess();
    EXPECT_EQ(mon.closeWindow(true),
              ActivityMonitor::Decision::SwitchToCbr);
    EXPECT_EQ(mon.switchesToCbr(), 1u);
}

TEST_F(MonitorTest, BusyWindowKeepsSmart)
{
    for (int i = 0; i < 5000; ++i)
        mon.recordAccess();
    EXPECT_EQ(mon.closeWindow(true),
              ActivityMonitor::Decision::KeepSmart);
}

TEST_F(MonitorTest, BusyWindowReenables)
{
    for (int i = 0; i < 300; ++i)
        mon.recordAccess();
    EXPECT_EQ(mon.closeWindow(false),
              ActivityMonitor::Decision::SwitchToSmart);
    EXPECT_EQ(mon.switchesToSmart(), 1u);
}

TEST_F(MonitorTest, HysteresisBandSticks)
{
    // 150 accesses: above the disable threshold, below the enable one.
    for (int i = 0; i < 150; ++i)
        mon.recordAccess();
    EXPECT_EQ(mon.closeWindow(true),
              ActivityMonitor::Decision::KeepSmart);
    for (int i = 0; i < 150; ++i)
        mon.recordAccess();
    EXPECT_EQ(mon.closeWindow(false),
              ActivityMonitor::Decision::KeepCbr);
}

TEST_F(MonitorTest, WindowCounterResetsEachWindow)
{
    for (int i = 0; i < 5000; ++i)
        mon.recordAccess();
    mon.closeWindow(true);
    EXPECT_EQ(mon.windowAccesses(), 0u);
    // An empty follow-up window must now trigger the fall-back.
    EXPECT_EQ(mon.closeWindow(true),
              ActivityMonitor::Decision::SwitchToCbr);
}

TEST_F(MonitorTest, DiscardWindowMakesNoDecision)
{
    for (int i = 0; i < 5000; ++i)
        mon.recordAccess();
    mon.discardWindow();
    EXPECT_EQ(mon.windowAccesses(), 0u);
    EXPECT_EQ(mon.switchesToCbr(), 0u);
    EXPECT_EQ(mon.switchesToSmart(), 0u);
}

TEST_F(MonitorTest, ExactThresholdBoundaries)
{
    // Exactly at the disable threshold: NOT below -> keep smart.
    for (std::uint64_t i = 0; i < mon.disableThreshold(); ++i)
        mon.recordAccess();
    EXPECT_EQ(mon.closeWindow(true),
              ActivityMonitor::Decision::KeepSmart);
    // Exactly at the enable threshold: NOT above -> keep CBR.
    for (std::uint64_t i = 0; i < mon.enableThreshold(); ++i)
        mon.recordAccess();
    EXPECT_EQ(mon.closeWindow(false),
              ActivityMonitor::Decision::KeepCbr);
}

TEST(MonitorConfig, RejectsInvertedThresholds)
{
    StatGroup root("root");
    ActivityMonitorParams p;
    p.disableBelowFraction = 0.05;
    p.enableAboveFraction = 0.01;
    EXPECT_THROW(ActivityMonitor(1000, p, &root), std::logic_error);
}

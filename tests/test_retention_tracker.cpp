#include <gtest/gtest.h>

#include "dram/retention_tracker.hh"

using namespace smartref;

namespace {
constexpr Tick kLimit = 1 * kMillisecond;
constexpr Tick kSlack = 10 * kMicrosecond;
} // namespace

class RetentionTest : public ::testing::Test
{
  protected:
    RetentionTracker tracker{1, 2, 8, kLimit, kSlack, nullptr};
};

TEST_F(RetentionTest, FreshRowsHaveNoViolations)
{
    tracker.onActivate(0, 0, 0, kLimit / 2);
    EXPECT_EQ(tracker.violations(), 0u);
}

TEST_F(RetentionTest, LateActivateIsViolation)
{
    tracker.onActivate(0, 1, 3, kLimit + kSlack + 1);
    EXPECT_EQ(tracker.violations(), 1u);
}

TEST_F(RetentionTest, ActivateExactlyAtLimitPlusSlackIsOk)
{
    tracker.onActivate(0, 0, 0, kLimit + kSlack);
    EXPECT_EQ(tracker.violations(), 0u);
}

TEST_F(RetentionTest, RestoreResetsTheClock)
{
    tracker.onRestore(0, 0, 5, kLimit);
    tracker.onActivate(0, 0, 5, 2 * kLimit - 1);
    EXPECT_EQ(tracker.violations(), 0u);
    tracker.onActivate(0, 0, 5, kLimit + kLimit + kSlack + 1);
    EXPECT_EQ(tracker.violations(), 1u);
}

TEST_F(RetentionTest, RefreshChecksAndRestores)
{
    tracker.onRefresh(0, 0, 2, kLimit / 2);
    // Deadline pushed out by the refresh.
    tracker.onActivate(0, 0, 2, kLimit / 2 + kLimit);
    EXPECT_EQ(tracker.violations(), 0u);
    EXPECT_EQ(tracker.minRefreshAge(), kLimit / 2);
}

TEST_F(RetentionTest, RefreshAgeStatistics)
{
    tracker.onRefresh(0, 0, 0, 100);
    tracker.onRefresh(0, 0, 1, 300);
    EXPECT_EQ(tracker.minRefreshAge(), 100u);
    EXPECT_DOUBLE_EQ(tracker.meanRefreshAge(), 200.0);
    EXPECT_DOUBLE_EQ(tracker.measuredOptimality(),
                     200.0 / static_cast<double>(kLimit));
}

TEST_F(RetentionTest, MaxObservedAgeTracks)
{
    tracker.onActivate(0, 1, 7, 12345);
    EXPECT_EQ(tracker.maxObservedAge(), 12345u);
}

TEST_F(RetentionTest, FinalCheckFindsStaleRows)
{
    // Refresh half the rows late in the run; the rest are stale.
    for (std::uint32_t r = 0; r < 4; ++r)
        tracker.onRestore(0, 0, r, kLimit);
    const std::uint64_t stale = tracker.finalCheck(kLimit + kLimit);
    // Bank 0 rows 4..7 and all of bank 1 were never restored.
    EXPECT_EQ(stale, 12u);
    EXPECT_EQ(tracker.violations(), 12u);
}

TEST_F(RetentionTest, FinalCheckClampsFutureRestores)
{
    // Regression: a restore recorded at a completion tick past the
    // horizon must not underflow the age computation.
    tracker.onRestore(0, 0, 0, kLimit + 5);
    for (std::uint32_t b = 0; b < 2; ++b)
        for (std::uint32_t r = 0; r < 8; ++r)
            if (!(b == 0 && r == 0))
                tracker.onRestore(0, b, r, kLimit);
    EXPECT_EQ(tracker.finalCheck(kLimit), 0u);
    EXPECT_EQ(tracker.violations(), 0u);
    EXPECT_LT(tracker.maxObservedAge(), kLimit);
}

TEST_F(RetentionTest, ChecksAreCounted)
{
    tracker.onActivate(0, 0, 0, 10);
    tracker.onRefresh(0, 0, 1, 20);
    const StatBase *s = tracker.findStat("checks");
    ASSERT_NE(s, nullptr);
}

#include <gtest/gtest.h>

#include <stdexcept>

#include "dram/dram_module.hh"
#include "test_config.hh"

using namespace smartref;

class DramModuleTest : public ::testing::Test
{
  protected:
    DramModuleTest() : dram(smartref::tcfg::tinyConfig(), eq) {}

    /** Advance to the command's earliest tick and issue it. */
    Tick
    issueAt(const DramCommand &cmd)
    {
        eq.runUntil(std::max(eq.now(), dram.earliestIssue(cmd)));
        return dram.issue(cmd);
    }

    EventQueue eq;
    DramModule dram;
    const DramTiming &t = dram.config().timing;
};

TEST_F(DramModuleTest, ActivateOpensBank)
{
    const Tick done =
        issueAt({DramCommandType::Activate, 0, 0, 10, 0});
    EXPECT_TRUE(dram.isBankOpen(0, 0));
    EXPECT_EQ(dram.openRow(0, 0), 10u);
    EXPECT_EQ(done, eq.now() + t.tRCD);
    EXPECT_EQ(dram.activates(), 1u);
}

TEST_F(DramModuleTest, ActivateIntoOpenBankPanics)
{
    issueAt({DramCommandType::Activate, 0, 0, 10, 0});
    eq.runUntil(eq.now() + t.tRC);
    EXPECT_THROW(dram.issue({DramCommandType::Activate, 0, 0, 11, 0}),
                 std::logic_error);
}

TEST_F(DramModuleTest, PrematureIssuePanics)
{
    issueAt({DramCommandType::Activate, 0, 0, 10, 0});
    // READ before tRCD has elapsed must be rejected.
    EXPECT_THROW(dram.issue({DramCommandType::Read, 0, 0, 10, 0}),
                 std::logic_error);
}

TEST_F(DramModuleTest, ReadWriteRequireMatchingRow)
{
    issueAt({DramCommandType::Activate, 0, 0, 10, 0});
    eq.runUntil(eq.now() + t.tRCD);
    EXPECT_THROW(dram.issue({DramCommandType::Read, 0, 0, 11, 0}),
                 std::logic_error);
    EXPECT_NO_THROW(dram.issue({DramCommandType::Read, 0, 0, 10, 3}));
    EXPECT_EQ(dram.reads(), 1u);
}

TEST_F(DramModuleTest, ReadCompletionIncludesCasAndBurst)
{
    issueAt({DramCommandType::Activate, 0, 0, 10, 0});
    const Tick done = issueAt({DramCommandType::Read, 0, 0, 10, 0});
    EXPECT_EQ(done, eq.now() + t.tCL + t.tBurst);
    EXPECT_EQ(dram.dataBusFreeAt(), done);
}

TEST_F(DramModuleTest, DataBusSerialisesBursts)
{
    issueAt({DramCommandType::Activate, 0, 0, 1, 0});
    issueAt({DramCommandType::Activate, 0, 1, 2, 0});
    const Tick firstDone = issueAt({DramCommandType::Read, 0, 0, 1, 0});
    // The second burst may not start before the bus frees.
    const Tick earliest =
        dram.earliestIssue({DramCommandType::Read, 0, 1, 2, 0});
    EXPECT_GE(earliest + t.tCL, firstDone);
}

TEST_F(DramModuleTest, PrechargeClosesAndRestores)
{
    issueAt({DramCommandType::Activate, 0, 0, 10, 0});
    const Tick done = issueAt({DramCommandType::Precharge, 0, 0, 0, 0});
    EXPECT_FALSE(dram.isBankOpen(0, 0));
    EXPECT_EQ(done, eq.now() + t.tRP);
    EXPECT_EQ(dram.precharges(), 1u);
}

TEST_F(DramModuleTest, PrechargeClosedBankPanics)
{
    EXPECT_THROW(dram.issue({DramCommandType::Precharge, 0, 0, 0, 0}),
                 std::logic_error);
}

TEST_F(DramModuleTest, CbrRefreshUsesInternalCounter)
{
    const auto target = dram.peekCbrTarget(0);
    issueAt({DramCommandType::RefreshCbr, 0, 0, 0, 0});
    EXPECT_EQ(dram.cbrRefreshes(), 1u);
    // Counter advanced.
    EXPECT_NE(dram.peekCbrTarget(0), target);
}

TEST_F(DramModuleTest, RasOnlyRefreshTargetsExplicitRow)
{
    issueAt({DramCommandType::RefreshRasOnly, 0, 1, 42, 0});
    EXPECT_EQ(dram.rasOnlyRefreshes(), 1u);
    EXPECT_GT(dram.power().refreshEnergy(), 0.0);
}

TEST_F(DramModuleTest, RefreshIntoOpenBankClosesPage)
{
    issueAt({DramCommandType::Activate, 0, 0, 7, 0});
    eq.runUntil(eq.now() + t.tRAS);
    const Tick done = issueAt({DramCommandType::RefreshRasOnly, 0, 0, 3, 0});
    EXPECT_FALSE(dram.isBankOpen(0, 0));
    EXPECT_EQ(done, eq.now() + t.tRP + t.tRFCrow);
    // The open-page penalty was charged.
    const StatBase *s = dram.power().findStat("refreshOpsOpen");
    ASSERT_NE(s, nullptr);
}

TEST_F(DramModuleTest, RefreshBlocksSubsequentActivate)
{
    issueAt({DramCommandType::RefreshRasOnly, 0, 0, 3, 0});
    const Tick earliest =
        dram.earliestIssue({DramCommandType::Activate, 0, 0, 5, 0});
    EXPECT_GE(earliest, eq.now() + t.tRFCrow);
}

TEST_F(DramModuleTest, OutOfRangeAddressPanics)
{
    eq.runUntil(1000);
    EXPECT_THROW(dram.issue({DramCommandType::Activate, 0, 0, 1 << 20, 0}),
                 std::logic_error);
    EXPECT_THROW(dram.issue({DramCommandType::Activate, 9, 0, 0, 0}),
                 std::logic_error);
}

TEST_F(DramModuleTest, RetentionTracksRefreshes)
{
    issueAt({DramCommandType::RefreshRasOnly, 0, 0, 3, 0});
    EXPECT_EQ(dram.retention().violations(), 0u);
}

TEST_F(DramModuleTest, TrrdSpacesActivatesWithinRank)
{
    issueAt({DramCommandType::Activate, 0, 0, 1, 0});
    const Tick earliest =
        dram.earliestIssue({DramCommandType::Activate, 0, 1, 1, 0});
    EXPECT_GE(earliest, eq.now() + t.tRRD);
}

TEST_F(DramModuleTest, FinalizeAccumulatesBackground)
{
    eq.runUntil(kMillisecond);
    dram.finalize();
    EXPECT_GT(dram.power().backgroundEnergy(), 0.0);
}

TEST_F(DramModuleTest, PowerDownReducesBackgroundEnergy)
{
    // Same idle duration, with and without power-down permission.
    EventQueue eq2;
    DramConfig noPd = smartref::tcfg::tinyConfig();
    noPd.allowPowerDown = false;
    DramModule dram2(noPd, eq2);

    eq.runUntil(kMillisecond);
    dram.finalize();
    eq2.runUntil(kMillisecond);
    dram2.finalize();
    EXPECT_LT(dram.power().backgroundEnergy(),
              dram2.power().backgroundEnergy());
}

/**
 * @file
 * Contract tests for InlineFunction, the event queue's callback type:
 * inline storage for small captures, observable heap fallback for
 * oversized ones, move-only semantics and exactly-once destruction.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/inline_function.hh"

using namespace smartref;

namespace {

/** Counts live capture instances to catch leaks and double frees. */
struct Tracked
{
    static int live;
    int payload;

    explicit Tracked(int p) : payload(p) { ++live; }
    Tracked(const Tracked &o) noexcept : payload(o.payload) { ++live; }
    Tracked(Tracked &&o) noexcept : payload(o.payload) { ++live; }
    ~Tracked() { --live; }
};

int Tracked::live = 0;

/** Oversized variant of Tracked that cannot fit any inline buffer here. */
struct BigTracked : Tracked
{
    std::array<char, 256> pad{};
    using Tracked::Tracked;
};

} // namespace

TEST(InlineFunction, SmallCaptureStaysInline)
{
    int x = 41;
    InlineFunction<int(), 64> f([x] { return x + 1; });
    EXPECT_TRUE(static_cast<bool>(f));
    EXPECT_FALSE(f.onHeap());
    EXPECT_EQ(f(), 42);
}

TEST(InlineFunction, AcceptsMoveOnlyCaptures)
{
    auto p = std::make_unique<int>(7);
    InlineFunction<int(), 64> f([p = std::move(p)] { return *p; });
    EXPECT_FALSE(f.onHeap());
    EXPECT_EQ(f(), 7);
}

TEST(InlineFunction, OversizeCaptureFallsBackToHeap)
{
    std::array<char, 128> blob{};
    blob[0] = 'x';
    blob[127] = 'y';
    InlineFunction<int(), 64> f(
        [blob] { return blob[0] == 'x' && blob[127] == 'y' ? 1 : 0; });
    EXPECT_TRUE(f.onHeap());
    EXPECT_EQ(f(), 1);
}

TEST(InlineFunction, ThrowingMoveCaptureFallsBackToHeap)
{
    // A capture whose move constructor may throw cannot live inline (the
    // wrapper's move must stay noexcept), so it takes the heap path too.
    struct ThrowingMove
    {
        int v;
        explicit ThrowingMove(int x) : v(x) {}
        ThrowingMove(const ThrowingMove &o) : v(o.v) {}
        ThrowingMove(ThrowingMove &&o) noexcept(false) : v(o.v) {}
    };
    ThrowingMove t(5);
    InlineFunction<int(), 64> f([t] { return t.v; });
    EXPECT_TRUE(f.onHeap());
    EXPECT_EQ(f(), 5);
}

TEST(InlineFunction, MoveTransfersAndEmptiesSource)
{
    InlineFunction<int(), 64> a([] { return 3; });
    InlineFunction<int(), 64> b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(b(), 3);

    InlineFunction<int(), 64> c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    EXPECT_EQ(c(), 3);
}

TEST(InlineFunction, InlineCaptureDestroyedExactlyOnce)
{
    ASSERT_EQ(Tracked::live, 0);
    {
        InlineFunction<int(), 64> f([t = Tracked(9)] { return t.payload; });
        EXPECT_FALSE(f.onHeap());
        EXPECT_EQ(f(), 9);
        InlineFunction<int(), 64> g(std::move(f));
        EXPECT_EQ(g(), 9);
        EXPECT_EQ(Tracked::live, 1);
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFunction, HeapCaptureDestroyedExactlyOnce)
{
    ASSERT_EQ(Tracked::live, 0);
    {
        InlineFunction<int(), 64> f(
            [t = BigTracked(4)] { return t.payload; });
        EXPECT_TRUE(f.onHeap());
        // Heap moves transfer the pointer: no extra instance is created.
        InlineFunction<int(), 64> g(std::move(f));
        EXPECT_EQ(Tracked::live, 1);
        EXPECT_EQ(g(), 4);
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFunction, AssignmentReleasesPreviousCapture)
{
    ASSERT_EQ(Tracked::live, 0);
    InlineFunction<int(), 64> f([t = Tracked(1)] { return t.payload; });
    EXPECT_EQ(Tracked::live, 1);
    f = InlineFunction<int(), 64>([t = Tracked(2)] { return t.payload; });
    EXPECT_EQ(Tracked::live, 1);
    EXPECT_EQ(f(), 2);
    f = nullptr;
    EXPECT_EQ(Tracked::live, 0);
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, InvokingEmptyPanics)
{
    InlineFunction<void(), 64> f;
    EXPECT_THROW(f(), std::logic_error);
}

TEST(InlineFunction, EventQueueCallbackFitsLargestSchedulerCapture)
{
    // The event queue promises at least 96 inline bytes; the largest
    // capture scheduled anywhere in the tree (a demand completion:
    // request + completion callback + tick) is 72 bytes. Keep a margin
    // so new capture members don't silently start heap-allocating.
    static_assert(EventQueue::Callback::kInlineCapacity >= 96,
                  "event callbacks must hold >= 96 byte captures inline");
    struct Payload
    {
        unsigned char bytes[96];
    };
    Payload p{};
    p.bytes[95] = 7;
    EventQueue::Callback cb([p] { (void)p.bytes[95]; });
    EXPECT_FALSE(cb.onHeap());
}
